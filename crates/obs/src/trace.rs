//! [`TraceRecorder`]: the collecting recorder behind every exporter.
//!
//! Direct recording goes through one mutex; campaign workers avoid that
//! mutex entirely by buffering into a [`LocalRecorder`] and pushing whole
//! [`ObsBatch`]es onto a lock-free Treiber stack here (`merge` is one CAS
//! loop, no lock). [`TraceRecorder::snapshot`] drains the stack into the
//! mutexed state and returns an owned [`ObsSnapshot`] for export.
//!
//! [`LocalRecorder`]: crate::LocalRecorder

use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::Path;
use std::ptr;
use std::sync::atomic::{AtomicPtr, Ordering};

use parking_lot::Mutex;

use crate::event::Event;
use crate::recorder::{close_span, ObsBatch, Recorder, SpanCtx, SpanRecord, SpanToken};

/// Default cap on retained spans (~1M); past it, spans are counted but
/// dropped so an unbounded campaign cannot exhaust memory.
pub const DEFAULT_MAX_SPANS: usize = 1 << 20;

/// Count / total / min / max summary of a duration histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TimingStat {
    /// Number of observations.
    pub count: u64,
    /// Sum of all observations, nanoseconds.
    pub total_ns: u64,
    /// Smallest observation, nanoseconds.
    pub min_ns: u64,
    /// Largest observation, nanoseconds.
    pub max_ns: u64,
}

impl TimingStat {
    /// Folds in one observation.
    pub fn observe(&mut self, ns: u64) {
        if self.count == 0 {
            self.min_ns = ns;
            self.max_ns = ns;
        } else {
            self.min_ns = self.min_ns.min(ns);
            self.max_ns = self.max_ns.max(ns);
        }
        self.count += 1;
        self.total_ns += ns;
    }

    /// Mean observation in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> u64 {
        self.total_ns.checked_div(self.count).unwrap_or(0)
    }
}

/// Aggregated per-layer wall time, derived from spans carrying a layer index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayerTimeRow {
    /// Network layer index.
    pub layer: usize,
    /// Layer name (from the first span seen for this layer).
    pub name: String,
    /// Layer kind (Chrome trace category).
    pub kind: &'static str,
    /// Number of forward spans.
    pub calls: u64,
    /// Total wall time across calls, nanoseconds.
    pub total_ns: u64,
}

impl LayerTimeRow {
    /// Mean nanoseconds per call (0 when no calls).
    pub fn mean_ns(&self) -> u64 {
        self.total_ns.checked_div(self.calls).unwrap_or(0)
    }
}

/// Owned copy of everything a [`TraceRecorder`] collected, ready for export.
#[derive(Debug, Clone, Default)]
pub struct ObsSnapshot {
    /// All retained spans, in merge order.
    pub spans: Vec<SpanRecord>,
    /// All events, in merge order.
    pub events: Vec<Event>,
    /// Counter totals by name.
    pub counters: BTreeMap<&'static str, u64>,
    /// Duration histograms by name.
    pub timings: BTreeMap<&'static str, TimingStat>,
    /// Spans discarded because the retention cap was hit.
    pub dropped_spans: u64,
}

impl ObsSnapshot {
    /// Per-layer wall-time table: spans with a layer index, aggregated by
    /// layer and sorted by layer index.
    pub fn layer_times(&self) -> Vec<LayerTimeRow> {
        let mut by_layer: BTreeMap<usize, LayerTimeRow> = BTreeMap::new();
        for span in &self.spans {
            let Some(layer) = span.layer else { continue };
            let row = by_layer.entry(layer).or_insert_with(|| LayerTimeRow {
                layer,
                name: span.name.clone(),
                kind: span.kind,
                calls: 0,
                total_ns: 0,
            });
            row.calls += 1;
            row.total_ns += span.dur_ns;
        }
        by_layer.into_values().collect()
    }
}

/// Internal mutexed aggregate.
#[derive(Default)]
struct State {
    spans: Vec<SpanRecord>,
    events: Vec<Event>,
    counters: BTreeMap<&'static str, u64>,
    timings: BTreeMap<&'static str, TimingStat>,
    dropped_spans: u64,
}

impl State {
    fn absorb(&mut self, batch: ObsBatch, max_spans: usize) {
        for span in batch.spans {
            if self.spans.len() < max_spans {
                self.spans.push(span);
            } else {
                self.dropped_spans += 1;
            }
        }
        self.events.extend(batch.events);
        for (name, delta) in batch.counters {
            *self.counters.entry(name).or_insert(0) += delta;
        }
        for (name, ns) in batch.timings {
            self.timings.entry(name).or_default().observe(ns);
        }
    }
}

struct Node {
    batch: ObsBatch,
    next: *mut Node,
}

/// In-memory collecting [`Recorder`] with lock-free batch merging and
/// exporters for Chrome `trace_event` JSON, JSONL, and Prometheus text.
pub struct TraceRecorder {
    state: Mutex<State>,
    /// Treiber stack of merged-but-not-yet-absorbed batches.
    pending: AtomicPtr<Node>,
    max_spans: usize,
}

impl Default for TraceRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceRecorder {
    /// A recorder retaining up to [`DEFAULT_MAX_SPANS`] spans.
    pub fn new() -> Self {
        Self::with_max_spans(DEFAULT_MAX_SPANS)
    }

    /// A recorder retaining up to `max_spans` spans (further spans are
    /// counted in [`ObsSnapshot::dropped_spans`] and discarded).
    pub fn with_max_spans(max_spans: usize) -> Self {
        TraceRecorder {
            state: Mutex::new(State::default()),
            pending: AtomicPtr::new(ptr::null_mut()),
            max_spans,
        }
    }

    /// Pops the whole pending stack and folds it into `state`, restoring
    /// merge order (the stack is LIFO).
    fn drain_pending(&self, state: &mut State) {
        let mut head = self.pending.swap(ptr::null_mut(), Ordering::AcqRel);
        let mut batches = Vec::new();
        while !head.is_null() {
            // SAFETY: nodes are only created by `merge` via Box::into_raw and
            // detached here exactly once (the swap above took ownership of
            // the whole chain).
            let node = unsafe { Box::from_raw(head) };
            head = node.next;
            batches.push(node.batch);
        }
        for batch in batches.into_iter().rev() {
            state.absorb(batch, self.max_spans);
        }
    }

    /// Owned copy of everything collected so far.
    pub fn snapshot(&self) -> ObsSnapshot {
        let mut state = self.state.lock();
        self.drain_pending(&mut state);
        ObsSnapshot {
            spans: state.spans.clone(),
            events: state.events.clone(),
            counters: state.counters.clone(),
            timings: state.timings.clone(),
            dropped_spans: state.dropped_spans,
        }
    }

    /// Chrome `trace_event` JSON of the current snapshot (Perfetto-loadable).
    pub fn chrome_trace(&self) -> String {
        crate::chrome::chrome_trace_json(&self.snapshot())
    }

    /// Writes [`TraceRecorder::chrome_trace`] to `path`.
    pub fn write_chrome_trace(&self, path: &Path) -> std::io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.chrome_trace().as_bytes())?;
        f.flush()
    }

    /// Prometheus exposition-format text of the current snapshot.
    pub fn prometheus(&self) -> String {
        crate::prom::prometheus_text(&self.snapshot())
    }

    /// Writes the current snapshot's events as line-atomic JSONL to `path`.
    pub fn write_events_jsonl(&self, path: &Path) -> std::io::Result<()> {
        crate::jsonl::write_events_jsonl(&self.snapshot(), path)
    }
}

impl Recorder for TraceRecorder {
    fn layer_enter(&self) -> SpanToken {
        crate::clock::now_ns()
    }

    fn layer_exit(&self, ctx: &SpanCtx<'_>, token: SpanToken) {
        self.span(close_span(ctx, token));
    }

    fn span(&self, span: SpanRecord) {
        let mut state = self.state.lock();
        if state.spans.len() < self.max_spans {
            state.spans.push(span);
        } else {
            state.dropped_spans += 1;
        }
    }

    fn event(&self, event: Event) {
        self.state.lock().events.push(event);
    }

    fn counter_add(&self, name: &'static str, delta: u64) {
        *self.state.lock().counters.entry(name).or_insert(0) += delta;
    }

    fn observe_ns(&self, name: &'static str, ns: u64) {
        self.state
            .lock()
            .timings
            .entry(name)
            .or_default()
            .observe(ns);
    }

    /// Lock-free: pushes the batch onto the pending stack with one CAS loop.
    fn merge(&self, batch: ObsBatch) {
        if batch.is_empty() {
            return;
        }
        let node = Box::into_raw(Box::new(Node {
            batch,
            next: ptr::null_mut(),
        }));
        let mut head = self.pending.load(Ordering::Relaxed);
        loop {
            // SAFETY: `node` came from Box::into_raw above and is not yet
            // shared; writing its `next` field is exclusive access.
            unsafe { (*node).next = head };
            match self.pending.compare_exchange_weak(
                head,
                node,
                Ordering::Release,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(actual) => head = actual,
            }
        }
    }
}

impl Drop for TraceRecorder {
    fn drop(&mut self) {
        let mut head = *self.pending.get_mut();
        while !head.is_null() {
            // SAFETY: same ownership argument as `drain_pending`; Drop has
            // exclusive access.
            let node = unsafe { Box::from_raw(head) };
            head = node.next;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{GuardEvent, TrialOutcomeEvent};
    use std::sync::Arc;

    fn span(name: &str, layer: Option<usize>, dur: u64) -> SpanRecord {
        SpanRecord {
            name: name.to_string(),
            kind: "test",
            layer,
            start_ns: 0,
            dur_ns: dur,
            tid: 1,
        }
    }

    #[test]
    fn direct_recording_round_trips_through_snapshot() {
        let rec = TraceRecorder::new();
        let token = rec.layer_enter();
        rec.layer_exit(
            &SpanCtx {
                name: "conv1",
                kind: "conv",
                layer: Some(0),
            },
            token,
        );
        rec.counter_add("c", 2);
        rec.counter_add("c", 3);
        rec.observe_ns("t", 10);
        rec.observe_ns("t", 20);
        rec.event(Event::Guard(GuardEvent::Deadline { steps: 5 }));

        let snap = rec.snapshot();
        assert_eq!(snap.spans.len(), 1);
        assert_eq!(snap.spans[0].name, "conv1");
        assert_eq!(snap.counters.get("c"), Some(&5));
        let t = snap.timings.get("t").unwrap();
        assert_eq!((t.count, t.total_ns, t.min_ns, t.max_ns), (2, 30, 10, 20));
        assert_eq!(t.mean_ns(), 15);
        assert_eq!(snap.events.len(), 1);
    }

    #[test]
    fn merge_is_observed_in_order_and_from_many_threads() {
        let rec = Arc::new(TraceRecorder::new());
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let rec = Arc::clone(&rec);
                std::thread::spawn(move || {
                    for i in 0..50 {
                        rec.merge(ObsBatch {
                            spans: vec![span(&format!("t{t}s{i}"), Some(t), 1)],
                            counters: vec![("merged", 1)],
                            ..ObsBatch::default()
                        });
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let snap = rec.snapshot();
        assert_eq!(snap.counters.get("merged"), Some(&400));
        assert_eq!(snap.spans.len(), 400);
        // Per-thread order is preserved by the LIFO-reversal in drain.
        for t in 0..8 {
            let names: Vec<_> = snap
                .spans
                .iter()
                .filter(|s| s.layer == Some(t))
                .map(|s| s.name.as_str())
                .collect();
            let expect: Vec<_> = (0..50).map(|i| format!("t{t}s{i}")).collect();
            assert_eq!(names, expect.iter().map(|s| s.as_str()).collect::<Vec<_>>());
        }
    }

    #[test]
    fn span_cap_drops_and_counts() {
        let rec = TraceRecorder::with_max_spans(2);
        for i in 0..5 {
            rec.span(span(&format!("s{i}"), None, 1));
        }
        rec.merge(ObsBatch {
            spans: vec![span("m", None, 1)],
            ..ObsBatch::default()
        });
        let snap = rec.snapshot();
        assert_eq!(snap.spans.len(), 2);
        assert_eq!(snap.dropped_spans, 4);
    }

    #[test]
    fn layer_times_aggregates_and_sorts() {
        let rec = TraceRecorder::new();
        rec.span(span("fc", Some(3), 30));
        rec.span(span("conv", Some(1), 10));
        rec.span(span("conv", Some(1), 14));
        rec.span(span("anon", None, 99));
        rec.event(Event::TrialOutcome(TrialOutcomeEvent {
            trial: 0,
            layer: 1,
            outcome: "masked",
            due_layer: None,
        }));
        let rows = rec.snapshot().layer_times();
        assert_eq!(rows.len(), 2);
        assert_eq!((rows[0].layer, rows[0].calls, rows[0].total_ns), (1, 2, 24));
        assert_eq!(rows[0].mean_ns(), 12);
        assert_eq!((rows[1].layer, rows[1].name.as_str()), (3, "fc"));
    }
}
