//! Telemetry sidecars: crash-safe JSONL streams of one shard worker's
//! observability data, written next to its campaign journal.
//!
//! A fleet worker's spans, events, counters, and timings die with its
//! process unless they hit disk continuously — a SIGKILLed shard gets no
//! chance to export. The [`SidecarRecorder`] therefore follows the campaign
//! journal's discipline exactly: a header line first, then one JSON object
//! per line, each write flushed whole, so a crash tears at most the final
//! line and [`read_sidecar`] recovers the valid prefix.
//!
//! The header carries a **monotonic clock anchor**: the recorder's
//! process-local [`now_ns`] reading at header-write time paired with the
//! wall clock (`anchor_unix_ms`). Span timestamps in the body are raw
//! process-local nanoseconds; the merge pass
//! ([`merge_shard_telemetry`](crate::merge::merge_shard_telemetry)) uses the
//! anchor pair to place every shard — and every restart of every shard —
//! on one fleet timeline.

use std::fmt::Write as _;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};

use parking_lot::Mutex;

use crate::clock::now_ns;
use crate::event::{escape_json_into, Event};
use crate::json::{parse_json, Value};
use crate::names::intern;
use crate::recorder::{close_span, ObsBatch, Recorder, SpanCtx, SpanRecord, SpanToken};

/// Sidecar schema version (the `rustfi_telemetry` header field).
pub const SIDECAR_VERSION: u64 = 1;

/// Identity + clock anchor from a sidecar's header line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SidecarHeader {
    /// Shard index within the fleet.
    pub shard: usize,
    /// Fleet shard count.
    pub shards: usize,
    /// Worker attempt (0 = first launch; restarts increment).
    pub attempt: u32,
    /// The writing process's [`now_ns`] at header-write time.
    pub anchor_ns: u64,
    /// Wall clock at header-write time, milliseconds since the Unix epoch.
    pub anchor_unix_ms: u64,
}

impl SidecarHeader {
    fn to_json_line(self) -> String {
        format!(
            "{{\"rustfi_telemetry\":{SIDECAR_VERSION},\"shard\":{},\"shards\":{},\
             \"attempt\":{},\"anchor_ns\":{},\"anchor_unix_ms\":{}}}\n",
            self.shard, self.shards, self.attempt, self.anchor_ns, self.anchor_unix_ms
        )
    }

    fn from_value(v: &Value) -> Result<Self, String> {
        let version = v
            .get("rustfi_telemetry")
            .and_then(Value::as_u64)
            .ok_or("not a telemetry sidecar header")?;
        if version != SIDECAR_VERSION {
            return Err(format!("unsupported sidecar version {version}"));
        }
        let field = |key: &str| -> Result<u64, String> {
            v.get(key)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("header missing \"{key}\""))
        };
        Ok(SidecarHeader {
            shard: field("shard")? as usize,
            shards: field("shards")? as usize,
            attempt: field("attempt")? as u32,
            anchor_ns: field("anchor_ns")?,
            anchor_unix_ms: field("anchor_unix_ms")?,
        })
    }
}

/// The sidecar path for a given journal path and worker attempt:
/// `shard-0000-of-0003.jsonl` → `shard-0000-of-0003.attempt-0002.telemetry.jsonl`.
///
/// Keying by attempt gives every restart its own file, which is what lets
/// the merge render restarts as separate sub-lanes (and keeps a restarted
/// worker from appending into its predecessor's possibly-torn stream).
pub fn sidecar_path(journal: &Path, attempt: u32) -> PathBuf {
    let stem = journal
        .file_name()
        .and_then(|n| n.to_str())
        .map(|n| n.strip_suffix(".jsonl").unwrap_or(n))
        .unwrap_or("journal");
    journal.with_file_name(format!("{stem}.attempt-{attempt:04}.telemetry.jsonl"))
}

/// The flight-recorder postmortem path for a given journal path:
/// `shard-0001-of-0003.jsonl` → `shard-0001-of-0003.flight`.
///
/// Unlike sidecars there is one flight file per shard, not per attempt — it
/// always holds the *latest* attempt's final moments, which is what a
/// postmortem wants.
pub fn flight_path(journal: &Path) -> PathBuf {
    let stem = journal
        .file_name()
        .and_then(|n| n.to_str())
        .map(|n| n.strip_suffix(".jsonl").unwrap_or(n))
        .unwrap_or("journal");
    journal.with_file_name(format!("{stem}.flight"))
}

/// Streaming [`Recorder`] that writes every span/event/counter/timing to a
/// crash-safe JSONL sidecar file.
///
/// Writes are batched per [`Recorder::merge`] call (one `write_all` + flush
/// for a whole trial's batch) and per-line for the single-item methods, so
/// the file always ends on a line boundary except possibly the final line
/// after a crash mid-write. After the first I/O error the recorder goes
/// quiet (telemetry must never take down a worker); [`SidecarRecorder::ok`]
/// reports whether everything made it out.
pub struct SidecarRecorder {
    header: SidecarHeader,
    path: PathBuf,
    out: Mutex<BufWriter<File>>,
    poisoned: AtomicBool,
}

impl SidecarRecorder {
    /// Creates (truncating) the sidecar at `path`, writing and flushing the
    /// header line immediately so even an instantly-killed worker leaves a
    /// well-formed (if empty) stream.
    pub fn create(path: &Path, shard: usize, shards: usize, attempt: u32) -> std::io::Result<Self> {
        let header = SidecarHeader {
            shard,
            shards,
            attempt,
            anchor_ns: now_ns(),
            anchor_unix_ms: unix_ms(),
        };
        let mut out = BufWriter::new(File::create(path)?);
        out.write_all(header.to_json_line().as_bytes())?;
        out.flush()?;
        Ok(SidecarRecorder {
            header,
            path: path.to_path_buf(),
            out: Mutex::new(out),
            poisoned: AtomicBool::new(false),
        })
    }

    /// Convenience: the sidecar next to `journal` for `attempt`.
    pub fn create_for_journal(
        journal: &Path,
        shard: usize,
        shards: usize,
        attempt: u32,
    ) -> std::io::Result<Self> {
        Self::create(&sidecar_path(journal, attempt), shard, shards, attempt)
    }

    /// The header written at creation.
    pub fn header(&self) -> SidecarHeader {
        self.header
    }

    /// Where this sidecar writes.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Whether every write so far succeeded.
    pub fn ok(&self) -> bool {
        !self.poisoned.load(Ordering::Relaxed)
    }

    fn write_chunk(&self, chunk: &str) {
        if chunk.is_empty() || self.poisoned.load(Ordering::Relaxed) {
            return;
        }
        let mut out = self.out.lock();
        if out
            .write_all(chunk.as_bytes())
            .and_then(|()| out.flush())
            .is_err()
        {
            self.poisoned.store(true, Ordering::Relaxed);
        }
    }
}

fn unix_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

fn encode_span_into(out: &mut String, span: &SpanRecord) {
    out.push_str("{\"span\":{\"name\":\"");
    escape_json_into(&span.name, out);
    out.push_str("\",\"kind\":\"");
    escape_json_into(span.kind, out);
    out.push_str("\",\"layer\":");
    match span.layer {
        Some(l) => {
            let _ = write!(out, "{l}");
        }
        None => out.push_str("null"),
    }
    let _ = writeln!(
        out,
        ",\"start_ns\":{},\"dur_ns\":{},\"tid\":{}}}}}",
        span.start_ns, span.dur_ns, span.tid
    );
}

fn encode_counter_into(out: &mut String, name: &str, delta: u64) {
    out.push_str("{\"counter\":\"");
    escape_json_into(name, out);
    let _ = writeln!(out, "\",\"delta\":{delta}}}");
}

fn encode_timing_into(out: &mut String, name: &str, ns: u64) {
    out.push_str("{\"timing\":\"");
    escape_json_into(name, out);
    let _ = writeln!(out, "\",\"ns\":{ns}}}");
}

fn encode_event_into(out: &mut String, event: &Event) {
    out.push_str("{\"event\":");
    out.push_str(&event.to_json());
    out.push_str("}\n");
}

impl Recorder for SidecarRecorder {
    fn layer_enter(&self) -> SpanToken {
        now_ns()
    }

    fn layer_exit(&self, ctx: &SpanCtx<'_>, token: SpanToken) {
        self.span(close_span(ctx, token));
    }

    fn span(&self, span: SpanRecord) {
        let mut line = String::with_capacity(128);
        encode_span_into(&mut line, &span);
        self.write_chunk(&line);
    }

    fn event(&self, event: Event) {
        let mut line = String::with_capacity(128);
        encode_event_into(&mut line, &event);
        self.write_chunk(&line);
    }

    fn counter_add(&self, name: &'static str, delta: u64) {
        let mut line = String::with_capacity(64);
        encode_counter_into(&mut line, name, delta);
        self.write_chunk(&line);
    }

    fn observe_ns(&self, name: &'static str, ns: u64) {
        let mut line = String::with_capacity(64);
        encode_timing_into(&mut line, name, ns);
        self.write_chunk(&line);
    }

    /// One `write_all` + one flush for the whole batch — the per-trial cost
    /// of streaming telemetry is a single syscall pair.
    fn merge(&self, batch: ObsBatch) {
        if batch.is_empty() {
            return;
        }
        let mut chunk = String::with_capacity(
            128 * (batch.spans.len() + batch.events.len())
                + 64 * (batch.counters.len() + batch.timings.len()),
        );
        for span in &batch.spans {
            encode_span_into(&mut chunk, span);
        }
        for event in &batch.events {
            encode_event_into(&mut chunk, event);
        }
        for (name, delta) in &batch.counters {
            encode_counter_into(&mut chunk, name, *delta);
        }
        for (name, ns) in &batch.timings {
            encode_timing_into(&mut chunk, name, *ns);
        }
        self.write_chunk(&chunk);
    }

    fn flush(&self) {
        let mut out = self.out.lock();
        if out.flush().is_err() {
            self.poisoned.store(true, Ordering::Relaxed);
        }
    }
}

/// Everything recovered from one sidecar file.
#[derive(Debug, Clone)]
pub struct SidecarRead {
    /// The header line.
    pub header: SidecarHeader,
    /// All recovered items, in write order.
    pub batch: ObsBatch,
    /// Lines discarded as torn/unparseable (a crashed worker tears at most
    /// the final line; anything more indicates corruption worth surfacing).
    pub torn_lines: usize,
}

/// Reads a sidecar back, repairing a torn tail: the valid line prefix is
/// kept, unparseable lines are counted and dropped. Fails only when the
/// file cannot be read at all or its first line is not a valid telemetry
/// header (wrong file / stillborn write).
pub fn read_sidecar(path: &Path) -> std::io::Result<SidecarRead> {
    let text = std::fs::read_to_string(path)?;
    let mut lines = text.lines();
    let header_line = lines.next().unwrap_or("");
    let header = parse_json(header_line)
        .map_err(|e| e.to_string())
        .and_then(|v| SidecarHeader::from_value(&v))
        .map_err(|e| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("{}: bad sidecar header: {e}", path.display()),
            )
        })?;
    let mut batch = ObsBatch::default();
    let mut torn_lines = 0usize;
    for line in lines {
        if line.is_empty() {
            continue;
        }
        match parse_json(line).ok().and_then(|v| decode_line(&v)) {
            Some(item) => match item {
                Line::Span(s) => batch.spans.push(s),
                Line::Event(e) => batch.events.push(e),
                Line::Counter(name, delta) => batch.counters.push((name, delta)),
                Line::Timing(name, ns) => batch.timings.push((name, ns)),
            },
            None => torn_lines += 1,
        }
    }
    Ok(SidecarRead {
        header,
        batch,
        torn_lines,
    })
}

enum Line {
    Span(SpanRecord),
    Event(Event),
    Counter(&'static str, u64),
    Timing(&'static str, u64),
}

fn decode_line(v: &Value) -> Option<Line> {
    if let Some(s) = v.get("span") {
        return Some(Line::Span(SpanRecord {
            name: s.get("name")?.as_str()?.to_string(),
            kind: intern(s.get("kind")?.as_str()?),
            layer: s.get("layer").and_then(Value::as_u64).map(|l| l as usize),
            start_ns: s.get("start_ns")?.as_u64()?,
            dur_ns: s.get("dur_ns")?.as_u64()?,
            tid: s.get("tid")?.as_u64()? as u32,
        }));
    }
    if let Some(e) = v.get("event") {
        return Event::from_json(e).ok().map(Line::Event);
    }
    if let Some(name) = v.get("counter").and_then(Value::as_str) {
        return Some(Line::Counter(
            intern(name),
            v.get("delta").and_then(Value::as_u64)?,
        ));
    }
    if let Some(name) = v.get("timing").and_then(Value::as_str) {
        return Some(Line::Timing(
            intern(name),
            v.get("ns").and_then(Value::as_u64)?,
        ));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{GuardEvent, TrialOutcomeEvent};
    use std::fs::OpenOptions;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rustfi_sidecar_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_batch() -> ObsBatch {
        ObsBatch {
            spans: vec![SpanRecord {
                name: "conv\"1\"".into(),
                kind: "conv",
                layer: Some(3),
                start_ns: 1_000,
                dur_ns: 250,
                tid: 2,
            }],
            events: vec![
                Event::Guard(GuardEvent::Deadline { steps: 7 }),
                Event::TrialOutcome(TrialOutcomeEvent {
                    trial: 5,
                    layer: 3,
                    outcome: "sdc",
                    due_layer: None,
                }),
            ],
            counters: vec![("fi.injections", 2), ("custom.thing", 1)],
            timings: vec![("campaign.trial_ns", 123_456)],
        }
    }

    #[test]
    fn sidecar_round_trips_a_batch() {
        let dir = tmpdir("roundtrip");
        let journal = dir.join("shard-0000-of-0002.jsonl");
        let path = sidecar_path(&journal, 0);
        let rec = SidecarRecorder::create(&path, 0, 2, 0).unwrap();
        rec.merge(sample_batch());
        rec.counter_add("fi.injections", 1);
        rec.observe_ns("campaign.trial_ns", 999);
        rec.flush();
        assert!(rec.ok());
        drop(rec);

        let read = read_sidecar(&path).unwrap();
        assert_eq!(read.torn_lines, 0);
        assert_eq!(read.header.shard, 0);
        assert_eq!(read.header.shards, 2);
        assert_eq!(read.header.attempt, 0);
        assert_eq!(read.batch.spans.len(), 1);
        assert_eq!(read.batch.spans[0].name, "conv\"1\"");
        assert_eq!(read.batch.spans[0].kind, "conv");
        assert_eq!(read.batch.spans[0].layer, Some(3));
        assert_eq!(read.batch.events.len(), 2);
        assert_eq!(
            read.batch.counters,
            vec![
                ("fi.injections", 2),
                ("custom.thing", 1),
                ("fi.injections", 1)
            ]
        );
        assert_eq!(
            read.batch.timings,
            vec![("campaign.trial_ns", 123_456), ("campaign.trial_ns", 999)]
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_is_repaired_not_fatal() {
        let dir = tmpdir("torn");
        let path = dir.join("s.telemetry.jsonl");
        let rec = SidecarRecorder::create(&path, 1, 3, 2).unwrap();
        rec.merge(sample_batch());
        drop(rec);
        // Simulate a crash mid-write: append half a line.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"{\"counter\":\"fi.inj").unwrap();
        drop(f);

        let read = read_sidecar(&path).unwrap();
        assert_eq!(read.torn_lines, 1, "torn tail counted");
        assert_eq!(read.batch.spans.len(), 1, "valid prefix intact");
        assert_eq!(read.header.attempt, 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn header_only_sidecar_reads_empty() {
        let dir = tmpdir("headeronly");
        let path = dir.join("s.telemetry.jsonl");
        SidecarRecorder::create(&path, 0, 1, 0).unwrap();
        let read = read_sidecar(&path).unwrap();
        assert!(read.batch.is_empty());
        assert_eq!(read.torn_lines, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn non_sidecar_file_is_refused() {
        let dir = tmpdir("refuse");
        let path = dir.join("not-telemetry.jsonl");
        std::fs::write(&path, "{\"rustfi_journal\":2}\n").unwrap();
        let err = read_sidecar(&path).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn paths_derive_from_the_journal_name() {
        let journal = Path::new("/tmp/fleet/shard-0002-of-0004.jsonl");
        assert_eq!(
            sidecar_path(journal, 3),
            Path::new("/tmp/fleet/shard-0002-of-0004.attempt-0003.telemetry.jsonl")
        );
        assert_eq!(
            flight_path(journal),
            Path::new("/tmp/fleet/shard-0002-of-0004.flight")
        );
    }
}
