//! Canonical metric names emitted by the RustFI stack.
//!
//! Counter and timing keys cross crate boundaries as plain strings (the
//! [`Recorder`](crate::Recorder) API is stringly-keyed on purpose — it keeps
//! the trait object-safe and dependency-free). The constants here are the
//! single source of truth for those keys, so emitters in `rustfi-nn` /
//! `rustfi` and consumers (Prometheus export, dashboards, benches) cannot
//! drift apart.

/// Forward-hook dispatches observed at leaf layers (`rustfi-nn`).
pub const NN_HOOK_DISPATCHES: &str = "nn.hook_dispatches";

/// Guard-hook activation scans (`rustfi-nn`).
pub const NN_GUARD_CHECKS: &str = "nn.guard_checks";

/// Individual value perturbations applied by a fault injector.
pub const FI_INJECTIONS: &str = "fi.injections";

/// Per-trial wall time histogram key.
pub const CAMPAIGN_TRIAL_NS: &str = "campaign.trial_ns";

/// Trials whose forward pass resumed from a cached golden-prefix activation.
pub const CAMPAIGN_PREFIX_HITS: &str = "campaign.prefix_hits";

/// Trials that fell back to a full forward pass (entry evicted, layer not
/// whitelisted, or image not cached).
pub const CAMPAIGN_PREFIX_MISSES: &str = "campaign.prefix_misses";

/// Estimated floating-point operations skipped by prefix-cache hits
/// (2 × MACs of the injectable layers that did not re-execute).
pub const CAMPAIGN_PREFIX_SKIPPED_FLOPS: &str = "campaign.prefix_skipped_flops";

/// Trials executed inside fused batched forward passes.
pub const CAMPAIGN_FUSED_TRIALS: &str = "campaign.fused_trials";

/// Fused chunks (batched forward passes) executed.
pub const CAMPAIGN_FUSED_GROUPS: &str = "campaign.fused_groups";

/// Fused chunk width histogram (trials per batched forward); recorded
/// through the generic u64 histogram channel.
pub const CAMPAIGN_FUSED_WIDTH: &str = "campaign.fused_width";

/// Per-fused-chunk wall time histogram key (replaces
/// [`CAMPAIGN_TRIAL_NS`] for trials that ran fused).
pub const CAMPAIGN_FUSED_CHUNK_NS: &str = "campaign.fused_chunk_ns";

/// Tensor-pool requests satisfied from a worker's thread-local free list.
pub const CAMPAIGN_POOL_HITS: &str = "campaign.pool_hits";

/// Tensor-pool requests that fell back to a fresh heap allocation while
/// pooling was enabled.
pub const CAMPAIGN_POOL_MISSES: &str = "campaign.pool_misses";

/// Total bytes of activation storage handed out from recycled buffers.
pub const CAMPAIGN_POOL_RECYCLED_BYTES: &str = "campaign.pool_recycled_bytes";

/// Shard worker processes spawned by a fleet orchestrator (first launches
/// and restarts alike).
pub const FLEET_SPAWNS: &str = "fleet.spawns";

/// Shard workers restarted after dying (non-zero exit, signal) before
/// finishing their range.
pub const FLEET_RESTARTS: &str = "fleet.restarts";

/// Shard workers killed by the orchestrator for missing their heartbeat
/// deadline (hung, not dead).
pub const FLEET_HUNG_KILLS: &str = "fleet.hung_kills";

/// Shards abandoned after exhausting their restart budget; the merged
/// report lists them in `missing_shards`.
pub const FLEET_ABANDONED: &str = "fleet.abandoned";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_namespaced_and_distinct() {
        let all = [
            NN_HOOK_DISPATCHES,
            NN_GUARD_CHECKS,
            FI_INJECTIONS,
            CAMPAIGN_TRIAL_NS,
            CAMPAIGN_PREFIX_HITS,
            CAMPAIGN_PREFIX_MISSES,
            CAMPAIGN_PREFIX_SKIPPED_FLOPS,
            CAMPAIGN_FUSED_TRIALS,
            CAMPAIGN_FUSED_GROUPS,
            CAMPAIGN_FUSED_WIDTH,
            CAMPAIGN_FUSED_CHUNK_NS,
            CAMPAIGN_POOL_HITS,
            CAMPAIGN_POOL_MISSES,
            CAMPAIGN_POOL_RECYCLED_BYTES,
            FLEET_SPAWNS,
            FLEET_RESTARTS,
            FLEET_HUNG_KILLS,
            FLEET_ABANDONED,
        ];
        for (i, a) in all.iter().enumerate() {
            assert!(a.contains('.'), "{a} is namespaced");
            for b in &all[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }
}
