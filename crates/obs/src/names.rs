//! Canonical metric names emitted by the RustFI stack.
//!
//! Counter and timing keys cross crate boundaries as plain strings (the
//! [`Recorder`](crate::Recorder) API is stringly-keyed on purpose — it keeps
//! the trait object-safe and dependency-free). The constants here are the
//! single source of truth for those keys, so emitters in `rustfi-nn` /
//! `rustfi` and consumers (Prometheus export, dashboards, benches) cannot
//! drift apart.

/// Forward-hook dispatches observed at leaf layers (`rustfi-nn`).
pub const NN_HOOK_DISPATCHES: &str = "nn.hook_dispatches";

/// Guard-hook activation scans (`rustfi-nn`).
pub const NN_GUARD_CHECKS: &str = "nn.guard_checks";

/// Individual value perturbations applied by a fault injector.
pub const FI_INJECTIONS: &str = "fi.injections";

/// Perturbations that landed directly in a stored INT8 word (real-INT8
/// backend: quantized activations and cached quantized weights). A subset of
/// [`FI_INJECTIONS`].
pub const FI_INT8_WORD_FLIPS: &str = "fi.int8_word_flips";

/// Per-trial wall time histogram key.
pub const CAMPAIGN_TRIAL_NS: &str = "campaign.trial_ns";

/// Trials whose forward pass resumed from a cached golden-prefix activation.
pub const CAMPAIGN_PREFIX_HITS: &str = "campaign.prefix_hits";

/// Trials that fell back to a full forward pass (entry evicted, layer not
/// whitelisted, or image not cached).
pub const CAMPAIGN_PREFIX_MISSES: &str = "campaign.prefix_misses";

/// Estimated floating-point operations skipped by prefix-cache hits
/// (2 × MACs of the injectable layers that did not re-execute).
pub const CAMPAIGN_PREFIX_SKIPPED_FLOPS: &str = "campaign.prefix_skipped_flops";

/// Trials executed inside fused batched forward passes.
pub const CAMPAIGN_FUSED_TRIALS: &str = "campaign.fused_trials";

/// Fused chunks (batched forward passes) executed.
pub const CAMPAIGN_FUSED_GROUPS: &str = "campaign.fused_groups";

/// Fused chunk width histogram (trials per batched forward); recorded
/// through the generic u64 histogram channel.
pub const CAMPAIGN_FUSED_WIDTH: &str = "campaign.fused_width";

/// Per-fused-chunk wall time histogram key (replaces
/// [`CAMPAIGN_TRIAL_NS`] for trials that ran fused).
pub const CAMPAIGN_FUSED_CHUNK_NS: &str = "campaign.fused_chunk_ns";

/// Tensor-pool requests satisfied from a worker's thread-local free list.
pub const CAMPAIGN_POOL_HITS: &str = "campaign.pool_hits";

/// Tensor-pool requests that fell back to a fresh heap allocation while
/// pooling was enabled.
pub const CAMPAIGN_POOL_MISSES: &str = "campaign.pool_misses";

/// Total bytes of activation storage handed out from recycled buffers.
pub const CAMPAIGN_POOL_RECYCLED_BYTES: &str = "campaign.pool_recycled_bytes";

/// Shard worker processes spawned by a fleet orchestrator (first launches
/// and restarts alike).
pub const FLEET_SPAWNS: &str = "fleet.spawns";

/// Shard workers restarted after dying (non-zero exit, signal) before
/// finishing their range.
pub const FLEET_RESTARTS: &str = "fleet.restarts";

/// Shard workers killed by the orchestrator for missing their heartbeat
/// deadline (hung, not dead).
pub const FLEET_HUNG_KILLS: &str = "fleet.hung_kills";

/// Shards abandoned after exhausting their restart budget; the merged
/// report lists them in `missing_shards`.
pub const FLEET_ABANDONED: &str = "fleet.abandoned";

/// One-line help text for a canonical metric name (the Prometheus `# HELP`
/// line). Unknown names get a generic description rather than an error so
/// ad-hoc metrics still render scrape-clean.
pub fn metric_help(name: &str) -> &'static str {
    match name {
        NN_HOOK_DISPATCHES => "Forward-hook dispatches observed at leaf layers.",
        NN_GUARD_CHECKS => "Guard-hook activation scans.",
        FI_INJECTIONS => "Individual value perturbations applied by a fault injector.",
        FI_INT8_WORD_FLIPS => "Perturbations applied directly to stored INT8 words.",
        CAMPAIGN_TRIAL_NS => "Per-trial wall time.",
        CAMPAIGN_PREFIX_HITS => "Trials resumed from a cached golden-prefix activation.",
        CAMPAIGN_PREFIX_MISSES => "Trials that fell back to a full forward pass.",
        CAMPAIGN_PREFIX_SKIPPED_FLOPS => "Estimated FLOPs skipped by prefix-cache hits.",
        CAMPAIGN_FUSED_TRIALS => "Trials executed inside fused batched forward passes.",
        CAMPAIGN_FUSED_GROUPS => "Fused chunks (batched forward passes) executed.",
        CAMPAIGN_FUSED_WIDTH => "Fused chunk width (trials per batched forward).",
        CAMPAIGN_FUSED_CHUNK_NS => "Per-fused-chunk wall time.",
        CAMPAIGN_POOL_HITS => "Tensor-pool requests satisfied from a recycled buffer.",
        CAMPAIGN_POOL_MISSES => "Tensor-pool requests that fell back to a fresh allocation.",
        CAMPAIGN_POOL_RECYCLED_BYTES => {
            "Bytes of activation storage handed out from recycled buffers."
        }
        FLEET_SPAWNS => "Shard worker processes spawned by a fleet orchestrator.",
        FLEET_RESTARTS => "Shard workers restarted after dying before finishing their range.",
        FLEET_HUNG_KILLS => "Shard workers killed for missing their heartbeat deadline.",
        FLEET_ABANDONED => "Shards abandoned after exhausting their restart budget.",
        _ => "RustFI metric.",
    }
}

/// Interns an arbitrary string, returning a `&'static str` with the same
/// contents.
///
/// The [`Recorder`](crate::Recorder) API keys counters, timings, and span
/// kinds by `&'static str` (keeping the trait object-safe and allocation-free
/// on the hot path). Telemetry read back from sidecar/flight files arrives as
/// owned strings; interning lets the readers rebuild
/// [`ObsBatch`](crate::ObsBatch)es that flow through the existing exporters.
/// Interned strings are leaked, bounded by the number of *distinct* metric
/// names and span kinds in the fleet — a few dozen in practice.
pub fn intern(name: &str) -> &'static str {
    // Fast path: the canonical names never need the table.
    for known in CANONICAL {
        if *known == name {
            return known;
        }
    }
    use std::collections::BTreeSet;
    use std::sync::{Mutex, OnceLock};
    static TABLE: OnceLock<Mutex<BTreeSet<&'static str>>> = OnceLock::new();
    let mut table = TABLE
        .get_or_init(|| Mutex::new(BTreeSet::new()))
        .lock()
        .unwrap();
    if let Some(existing) = table.get(name) {
        return existing;
    }
    let leaked: &'static str = Box::leak(name.to_string().into_boxed_str());
    table.insert(leaked);
    leaked
}

/// The canonical name list (kept in one place for [`intern`]'s fast path and
/// the uniqueness test).
const CANONICAL: &[&str] = &[
    NN_HOOK_DISPATCHES,
    NN_GUARD_CHECKS,
    FI_INJECTIONS,
    FI_INT8_WORD_FLIPS,
    CAMPAIGN_TRIAL_NS,
    CAMPAIGN_PREFIX_HITS,
    CAMPAIGN_PREFIX_MISSES,
    CAMPAIGN_PREFIX_SKIPPED_FLOPS,
    CAMPAIGN_FUSED_TRIALS,
    CAMPAIGN_FUSED_GROUPS,
    CAMPAIGN_FUSED_WIDTH,
    CAMPAIGN_FUSED_CHUNK_NS,
    CAMPAIGN_POOL_HITS,
    CAMPAIGN_POOL_MISSES,
    CAMPAIGN_POOL_RECYCLED_BYTES,
    FLEET_SPAWNS,
    FLEET_RESTARTS,
    FLEET_HUNG_KILLS,
    FLEET_ABANDONED,
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_stable_and_fast_paths_canonical_names() {
        // Canonical names resolve without touching the table (content
        // equality only — `const` inlining makes pointer identity between
        // separate uses of a literal unreliable).
        assert_eq!(intern("fi.injections"), FI_INJECTIONS);
        let a = intern("custom.metric.one");
        let b = intern("custom.metric.one");
        assert_eq!(a.as_ptr(), b.as_ptr(), "same leaked allocation");
        assert_eq!(a, "custom.metric.one");
    }

    #[test]
    fn every_canonical_name_has_specific_help() {
        for name in CANONICAL {
            assert_ne!(metric_help(name), "RustFI metric.", "{name}");
        }
    }

    #[test]
    fn names_are_namespaced_and_distinct() {
        let all = CANONICAL;
        for (i, a) in all.iter().enumerate() {
            assert!(a.contains('.'), "{a} is namespaced");
            for b in &all[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }
}
