//! Flight recorder: a bounded ring buffer of the last N observability
//! items, flushed to a `*.flight` postmortem file so a crashed or killed
//! worker still ships its final moments.
//!
//! Unlike the telemetry sidecar (which streams *everything* to disk), the
//! flight recorder holds fixed memory — the last `cap` spans/events plus
//! running counter totals — and snapshots the whole ring to disk atomically
//! (write temp file, rename). A worker arms three flush paths:
//!
//! 1. an **initial snapshot** at startup, so even an instantly-SIGKILLed
//!    worker leaves a (possibly empty) postmortem;
//! 2. a **periodic snapshot** from the heartbeat thread (SIGKILL gives no
//!    chance to flush, so the on-disk ring trails reality by at most one
//!    heartbeat interval);
//! 3. a **panic-hook snapshot** ([`FlightRecorder::arm_panic_flush`]) that
//!    captures the exact final state on the way down.
//!
//! The orchestrator harvests the file after killing a hung worker; humans
//! read it to answer "what was shard 3 doing when it died?".

use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::clock::now_ns;
use crate::event::Event;
use crate::json::{parse_json, Value};
use crate::recorder::{close_span, Recorder, SpanCtx, SpanRecord, SpanToken};
use crate::sidecar::SidecarHeader;

/// Flight-file schema version (the `rustfi_flight` header field).
pub const FLIGHT_VERSION: u64 = 1;

/// Default ring capacity: enough to see the last few trials' spans and
/// events without holding meaningful memory.
pub const DEFAULT_FLIGHT_CAP: usize = 256;

/// One retained item: a global sequence number, the capture timestamp
/// (process-local [`now_ns`]), and the item's JSON payload.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightEntry {
    /// Position in the total stream (monotonic across evictions), so a
    /// reader can tell how much history scrolled off the ring.
    pub seq: u64,
    /// Capture time, nanoseconds on the worker's monotonic clock.
    pub ns: u64,
    /// The item payload as a JSON object string (an `Event::to_json`
    /// object, or `{"span":...}` for spans).
    pub payload: String,
}

struct FlightState {
    ring: VecDeque<FlightEntry>,
    counters: BTreeMap<&'static str, u64>,
    seq: u64,
    dropped: u64,
}

/// Bounded-memory [`Recorder`] retaining the last `cap` spans/events plus
/// running counter totals, snapshottable to a postmortem file at any time.
pub struct FlightRecorder {
    cap: usize,
    state: Mutex<FlightState>,
    path: Option<PathBuf>,
    /// Identity stamped into the postmortem header (shard/attempt/anchor).
    identity: Option<SidecarHeader>,
}

impl FlightRecorder {
    /// An in-memory ring of capacity `cap` (no backing file; `flush` is a
    /// no-op until a path is attached via [`FlightRecorder::with_path`]).
    pub fn new(cap: usize) -> Self {
        FlightRecorder {
            cap: cap.max(1),
            state: Mutex::new(FlightState {
                ring: VecDeque::new(),
                counters: BTreeMap::new(),
                seq: 0,
                dropped: 0,
            }),
            path: None,
            identity: None,
        }
    }

    /// Attaches the postmortem path (and optional shard identity) this
    /// recorder snapshots to on [`Recorder::flush`] / panic.
    pub fn with_path(mut self, path: &Path, identity: Option<SidecarHeader>) -> Self {
        self.path = Some(path.to_path_buf());
        self.identity = identity;
        self
    }

    /// Ring capacity.
    pub fn cap(&self) -> usize {
        self.cap
    }

    fn push_payload(&self, payload: String) {
        let ns = now_ns();
        let mut state = self.state.lock();
        if state.ring.len() == self.cap {
            state.ring.pop_front();
            state.dropped += 1;
        }
        let seq = state.seq;
        state.seq += 1;
        state.ring.push_back(FlightEntry { seq, ns, payload });
    }

    /// The retained entries, oldest first (exactly the last `min(seq, cap)`
    /// items pushed).
    pub fn entries(&self) -> Vec<FlightEntry> {
        self.state.lock().ring.iter().cloned().collect()
    }

    /// Total items ever pushed.
    pub fn total_seen(&self) -> u64 {
        self.state.lock().seq
    }

    /// Renders the current ring as flight-file text: a header line, then
    /// one entry per line, oldest first.
    pub fn render(&self) -> String {
        let state = self.state.lock();
        let mut out = String::with_capacity(64 + 160 * state.ring.len());
        let _ = write!(
            out,
            "{{\"rustfi_flight\":{FLIGHT_VERSION},\"cap\":{},\"seq\":{},\"dropped\":{}",
            self.cap, state.seq, state.dropped
        );
        if let Some(id) = &self.identity {
            let _ = write!(
                out,
                ",\"shard\":{},\"shards\":{},\"attempt\":{},\"anchor_ns\":{},\"anchor_unix_ms\":{}",
                id.shard, id.shards, id.attempt, id.anchor_ns, id.anchor_unix_ms
            );
        }
        let _ = write!(out, ",\"counters\":{{");
        for (i, (name, value)) in state.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            crate::event::escape_json_into(name, &mut out);
            let _ = write!(out, "\":{value}");
        }
        out.push_str("}}\n");
        for entry in &state.ring {
            let _ = writeln!(
                out,
                "{{\"seq\":{},\"ns\":{},\"item\":{}}}",
                entry.seq, entry.ns, entry.payload
            );
        }
        out
    }

    /// Atomically writes the current ring to the attached path (temp file +
    /// rename, so a reader never sees a half-written postmortem and a crash
    /// mid-snapshot leaves the previous snapshot intact). No-op without a
    /// path. Errors are swallowed — the flight recorder must never take
    /// down the worker it is documenting.
    pub fn snapshot_to_disk(&self) {
        let Some(path) = &self.path else { return };
        let tmp = path.with_extension("flight.tmp");
        if std::fs::write(&tmp, self.render()).is_ok() {
            let _ = std::fs::rename(&tmp, path);
        }
    }

    /// Chains a panic hook that snapshots this ring to disk before the
    /// previous hook runs, so a panicking worker's postmortem captures the
    /// exact final state. Holds only a `Weak`; once the recorder is dropped
    /// the hook is inert.
    pub fn arm_panic_flush(recorder: &Arc<FlightRecorder>) {
        let weak = Arc::downgrade(recorder);
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if let Some(rec) = weak.upgrade() {
                rec.push_payload(format!("{{\"panic\":\"{}\"}}", escape(&info.to_string())));
                rec.snapshot_to_disk();
            }
            prev(info);
        }));
    }
}

fn escape(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    crate::event::escape_json_into(raw, &mut out);
    out
}

impl Recorder for FlightRecorder {
    fn layer_enter(&self) -> SpanToken {
        now_ns()
    }

    fn layer_exit(&self, ctx: &SpanCtx<'_>, token: SpanToken) {
        self.span(close_span(ctx, token));
    }

    fn span(&self, span: SpanRecord) {
        let mut payload = String::with_capacity(96);
        payload.push_str("{\"span\":{\"name\":\"");
        crate::event::escape_json_into(&span.name, &mut payload);
        payload.push_str("\",\"kind\":\"");
        crate::event::escape_json_into(span.kind, &mut payload);
        let _ = write!(
            payload,
            "\",\"layer\":{},\"start_ns\":{},\"dur_ns\":{},\"tid\":{}}}}}",
            span.layer
                .map(|l| l.to_string())
                .unwrap_or_else(|| "null".into()),
            span.start_ns,
            span.dur_ns,
            span.tid
        );
        self.push_payload(payload);
    }

    fn event(&self, event: Event) {
        self.push_payload(event.to_json());
    }

    fn counter_add(&self, name: &'static str, delta: u64) {
        *self.state.lock().counters.entry(name).or_insert(0) += delta;
    }

    fn observe_ns(&self, _name: &'static str, _ns: u64) {
        // Timing distributions live in the sidecar/stats path; the flight
        // ring documents *what happened last*, not how long things took.
    }

    fn flush(&self) {
        self.snapshot_to_disk();
    }
}

/// A parsed flight postmortem.
#[derive(Debug, Clone)]
pub struct FlightRead {
    /// Ring capacity at capture time.
    pub cap: usize,
    /// Total items the worker ever pushed.
    pub seq: u64,
    /// Items that scrolled off the ring before capture.
    pub dropped: u64,
    /// Shard identity, when the worker stamped one.
    pub shard: Option<usize>,
    /// Worker attempt, when stamped.
    pub attempt: Option<u32>,
    /// Running counter totals at capture time.
    pub counters: BTreeMap<String, u64>,
    /// Retained entries, oldest first: `(seq, ns, item)`.
    pub entries: Vec<(u64, u64, Value)>,
}

/// Reads a flight postmortem back. Tolerates a torn tail line (snapshots
/// are atomic via rename, but be lenient anyway); fails only if the file is
/// unreadable or the header is not a flight header.
pub fn read_flight(path: &Path) -> std::io::Result<FlightRead> {
    let text = std::fs::read_to_string(path)?;
    let mut lines = text.lines();
    let header = lines
        .next()
        .and_then(|l| parse_json(l).ok())
        .filter(|v| v.get("rustfi_flight").and_then(Value::as_u64) == Some(FLIGHT_VERSION))
        .ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("{}: not a flight postmortem", path.display()),
            )
        })?;
    let mut counters = BTreeMap::new();
    if let Some(Value::Obj(map)) = header.get("counters") {
        for (k, v) in map {
            if let Some(n) = v.as_u64() {
                counters.insert(k.clone(), n);
            }
        }
    }
    let mut entries = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Ok(v) = parse_json(line) else { continue };
        let (Some(seq), Some(ns), Some(item)) = (
            v.get("seq").and_then(Value::as_u64),
            v.get("ns").and_then(Value::as_u64),
            v.get("item"),
        ) else {
            continue;
        };
        entries.push((seq, ns, item.clone()));
    }
    Ok(FlightRead {
        cap: header.get("cap").and_then(Value::as_u64).unwrap_or(0) as usize,
        seq: header.get("seq").and_then(Value::as_u64).unwrap_or(0),
        dropped: header.get("dropped").and_then(Value::as_u64).unwrap_or(0),
        shard: header
            .get("shard")
            .and_then(Value::as_u64)
            .map(|s| s as usize),
        attempt: header
            .get("attempt")
            .and_then(Value::as_u64)
            .map(|a| a as u32),
        counters,
        entries,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{GuardEvent, TrialOutcomeEvent};

    fn outcome(trial: usize) -> Event {
        Event::TrialOutcome(TrialOutcomeEvent {
            trial,
            layer: 0,
            outcome: "masked",
            due_layer: None,
        })
    }

    #[test]
    fn ring_keeps_exactly_the_last_n() {
        let rec = FlightRecorder::new(4);
        for i in 0..10 {
            rec.event(outcome(i));
        }
        let entries = rec.entries();
        assert_eq!(entries.len(), 4);
        assert_eq!(
            entries.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![6, 7, 8, 9]
        );
        assert_eq!(rec.total_seen(), 10);
    }

    #[test]
    fn counters_accumulate_outside_the_ring() {
        let rec = FlightRecorder::new(2);
        for _ in 0..50 {
            rec.counter_add("fi.injections", 1);
        }
        rec.event(outcome(0));
        let text = rec.render();
        assert!(text.contains("\"fi.injections\":50"), "{text}");
        assert_eq!(rec.entries().len(), 1, "counters do not occupy ring slots");
    }

    #[test]
    fn postmortem_round_trips_through_disk() {
        let dir = std::env::temp_dir().join(format!("rustfi_flight_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("shard-0001-of-0003.flight");
        let identity = SidecarHeader {
            shard: 1,
            shards: 3,
            attempt: 2,
            anchor_ns: 5,
            anchor_unix_ms: 1_700_000_000_000,
        };
        let rec = FlightRecorder::new(8).with_path(&path, Some(identity));
        rec.counter_add("fi.injections", 3);
        rec.event(Event::Guard(GuardEvent::Deadline { steps: 11 }));
        rec.span(SpanRecord {
            name: "trial 9".into(),
            kind: "trial",
            layer: None,
            start_ns: 100,
            dur_ns: 50,
            tid: 1,
        });
        rec.flush();

        let read = read_flight(&path).unwrap();
        assert_eq!(read.cap, 8);
        assert_eq!(read.seq, 2);
        assert_eq!(read.shard, Some(1));
        assert_eq!(read.attempt, Some(2));
        assert_eq!(read.counters.get("fi.injections"), Some(&3));
        assert_eq!(read.entries.len(), 2);
        assert_eq!(
            read.entries[0].2.get("type").and_then(Value::as_str),
            Some("guard")
        );
        assert_eq!(
            read.entries[1]
                .2
                .get("span")
                .and_then(|s| s.get("name"))
                .and_then(Value::as_str),
            Some("trial 9")
        );
        // A re-flush overwrites atomically; no temp file lingers.
        rec.event(outcome(1));
        rec.flush();
        assert_eq!(read_flight(&path).unwrap().entries.len(), 3);
        assert!(!path.with_extension("flight.tmp").exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn non_flight_file_is_refused() {
        let dir = std::env::temp_dir().join(format!("rustfi_flight_refuse_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("x.flight");
        std::fs::write(&path, "{\"rustfi_journal\":2}\n").unwrap();
        assert_eq!(
            read_flight(&path).unwrap_err().kind(),
            std::io::ErrorKind::InvalidData
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
