//! IEEE-754 bit manipulation for `f32` values.
//!
//! Hardware transient faults are modeled as single-bit flips in the binary
//! representation of a value. This module provides the FP32 machinery; the
//! INT8 counterpart lives in `rustfi-quant` next to the quantizer it depends
//! on.

/// Number of bits in an `f32`.
pub const F32_BITS: u32 = 32;

/// Flips bit `bit` (0 = least significant mantissa bit, 31 = sign bit) of an
/// `f32`'s IEEE-754 representation.
///
/// # Panics
///
/// Panics if `bit >= 32`.
///
/// # Example
///
/// ```
/// use rustfi_tensor::bits::flip_bit_f32;
///
/// // Flipping the sign bit negates the value.
/// assert_eq!(flip_bit_f32(1.5, 31), -1.5);
/// // A double flip restores the original.
/// assert_eq!(flip_bit_f32(flip_bit_f32(0.1, 23), 23), 0.1);
/// ```
pub fn flip_bit_f32(value: f32, bit: u32) -> f32 {
    assert!(bit < F32_BITS, "f32 bit index {bit} out of range");
    f32::from_bits(value.to_bits() ^ (1u32 << bit))
}

/// Returns the value of bit `bit` of an `f32`'s representation.
///
/// # Panics
///
/// Panics if `bit >= 32`.
pub fn bit_of_f32(value: f32, bit: u32) -> bool {
    assert!(bit < F32_BITS, "f32 bit index {bit} out of range");
    value.to_bits() & (1u32 << bit) != 0
}

/// Decomposes an `f32` into `(sign, biased_exponent, mantissa)` fields.
pub fn fields_of_f32(value: f32) -> (bool, u8, u32) {
    let bits = value.to_bits();
    (
        (bits >> 31) != 0,
        ((bits >> 23) & 0xFF) as u8,
        bits & 0x7F_FFFF,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sign_bit_negates() {
        assert_eq!(flip_bit_f32(2.0, 31), -2.0);
        assert_eq!(flip_bit_f32(-2.0, 31), 2.0);
    }

    #[test]
    fn flip_is_involutive_for_every_bit() {
        for bit in 0..32 {
            let x = 0.734_f32;
            assert_eq!(
                flip_bit_f32(flip_bit_f32(x, bit), bit).to_bits(),
                x.to_bits()
            );
        }
    }

    #[test]
    fn exponent_flip_changes_magnitude_dramatically() {
        // Flipping the top exponent bit of 1.0 (bits 0x3F800000) yields a huge value.
        let y = flip_bit_f32(1.0, 30);
        assert!(y > 1e30 || y.is_infinite(), "got {y}");
    }

    #[test]
    fn mantissa_lsb_flip_is_tiny() {
        let y = flip_bit_f32(1.0, 0);
        assert!((y - 1.0).abs() < 1e-6 && y != 1.0);
    }

    #[test]
    fn bit_of_reads_back_after_flip() {
        let x = 3.25f32;
        for bit in [0u32, 5, 23, 30, 31] {
            assert_ne!(bit_of_f32(x, bit), bit_of_f32(flip_bit_f32(x, bit), bit));
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn flip_rejects_bit_32() {
        flip_bit_f32(1.0, 32);
    }

    #[test]
    fn fields_of_one() {
        let (s, e, m) = fields_of_f32(1.0);
        assert!(!s);
        assert_eq!(e, 127);
        assert_eq!(m, 0);
        let (s, _, _) = fields_of_f32(-1.0);
        assert!(s);
    }

    #[test]
    fn fields_of_zero_and_nan() {
        assert_eq!(fields_of_f32(0.0), (false, 0, 0));
        let (_, e, m) = fields_of_f32(f32::NAN);
        assert_eq!(e, 255);
        assert_ne!(m, 0);
    }
}
