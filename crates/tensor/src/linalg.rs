//! Dense matrix multiplication.

use crate::parallel;
use crate::tensor::Tensor;

/// Threshold (in multiply–accumulate operations) above which matmul fans out
/// across threads.
const PARALLEL_MACS: usize = 1 << 20;

/// Multiplies two rank-2 tensors: `[m, k] x [k, n] -> [m, n]`.
///
/// Uses an ikj loop order for cache-friendly access and parallelizes over
/// output rows for large problems.
///
/// # Panics
///
/// Panics if either input is not rank 2 or the inner dimensions disagree.
///
/// # Example
///
/// ```
/// use rustfi_tensor::{matmul, Tensor};
///
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
/// let i = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2]);
/// assert_eq!(matmul(&a, &i), a);
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    crate::opcount::count_matmul();
    let (m, k) = a.dims2();
    let (k2, n) = b.dims2();
    assert_eq!(
        k,
        k2,
        "matmul inner dimension mismatch: {:?} x {:?}",
        a.dims(),
        b.dims()
    );
    let mut out = vec![0.0f32; m * n];
    let a_data = a.data();
    let b_data = b.data();

    let row_work = |rows: std::ops::Range<usize>, out_rows: &mut [f32]| {
        for (local_i, i) in rows.enumerate() {
            let out_row = &mut out_rows[local_i * n..(local_i + 1) * n];
            for kk in 0..k {
                let aik = a_data[i * k + kk];
                if aik == 0.0 {
                    continue;
                }
                let b_row = &b_data[kk * n..(kk + 1) * n];
                for (o, &bv) in out_row.iter_mut().zip(b_row) {
                    *o += aik * bv;
                }
            }
        }
    };

    if m * n * k >= PARALLEL_MACS && m > 1 {
        parallel::for_each_chunk_mut(&mut out, n, |chunk_idx, rows, slab| {
            row_work(chunk_idx..chunk_idx + rows, slab);
        });
    } else {
        row_work(0..m, &mut out);
    }
    Tensor::from_vec(out, &[m, n])
}

/// Transposes a rank-2 tensor.
///
/// # Panics
///
/// Panics if the input is not rank 2.
pub fn transpose(a: &Tensor) -> Tensor {
    let (m, n) = a.dims2();
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            out[j * m + i] = a.data()[i * n + j];
        }
    }
    Tensor::from_vec(out, &[n, m])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_small_known_values() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let b = Tensor::from_vec(vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]);
        let c = matmul(&a, &b);
        assert_eq!(c.dims(), &[2, 2]);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Tensor::from_fn(&[4, 4], |i| i as f32);
        let mut eye = Tensor::zeros(&[4, 4]);
        for i in 0..4 {
            eye.set(&[i, i], 1.0);
        }
        assert_eq!(matmul(&a, &eye), a);
        assert_eq!(matmul(&eye, &a), a);
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn matmul_rejects_mismatch() {
        matmul(&Tensor::zeros(&[2, 3]), &Tensor::zeros(&[2, 2]));
    }

    #[test]
    fn parallel_path_matches_serial() {
        use crate::rng::SeededRng;
        let mut rng = SeededRng::new(1);
        // Big enough to cross PARALLEL_MACS.
        let a = Tensor::rand_normal(&[128, 96], 0.0, 1.0, &mut rng);
        let b = Tensor::rand_normal(&[96, 128], 0.0, 1.0, &mut rng);
        let fast = matmul(&a, &b);
        // Serial reference.
        let (m, k) = a.dims2();
        let (_, n) = b.dims2();
        let mut reference = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut s = 0.0;
                for kk in 0..k {
                    s += a.data()[i * k + kk] * b.data()[kk * n + j];
                }
                reference[i * n + j] = s;
            }
        }
        for (x, y) in fast.data().iter().zip(&reference) {
            assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    #[test]
    fn transpose_involution() {
        let a = Tensor::from_fn(&[3, 5], |i| i as f32);
        let t = transpose(&a);
        assert_eq!(t.dims(), &[5, 3]);
        assert_eq!(t.at(&[4, 2]), a.at(&[2, 4]));
        assert_eq!(transpose(&t), a);
    }
}
