//! Dense matrix multiplication.

use crate::parallel;
use crate::tensor::Tensor;

/// Threshold (in multiply–accumulate operations) above which matmul fans out
/// across threads.
pub(crate) const PARALLEL_MACS: usize = 1 << 20;

/// Rows of `a` processed together by the register-blocked microkernel: each
/// loaded `b` segment feeds this many output rows.
pub(crate) const MR: usize = 4;

/// Column-tile width of the microkernel. An `MR` × `NR` f32 accumulator tile
/// fits in SIMD registers, so the hot loop does `MR * NR` fused
/// multiply-adds per `NR`-wide load of `b`.
pub(crate) const NR: usize = 16;

/// Serial register-blocked kernel over `rows` of the output.
///
/// Accumulation order per output element is strictly `kk`-increasing — the
/// same order for every blocking factor, tile width, and thread count — so
/// results are bit-identical regardless of how the work is split.
///
/// On x86-64 the same body is also compiled with AVX2 enabled and selected
/// by runtime CPU detection. Only the SIMD lane width changes: every output
/// element still sees the identical sequence of f32 multiplies and adds
/// (Rust never contracts `a * b + c` into a fused multiply-add), so the two
/// paths are bit-identical and the dispatch is unobservable in results.
fn block_rows(
    a: &[f32],
    b: &[f32],
    rows: std::ops::Range<usize>,
    out_rows: &mut [f32],
    k: usize,
    n: usize,
) {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: the AVX2 compilation of the kernel is only reached after
        // runtime detection confirms the CPU supports it.
        unsafe { block_rows_avx2(a, b, rows, out_rows, k, n) };
        return;
    }
    block_rows_impl(a, b, rows, out_rows, k, n);
}

/// The portable compilation of [`block_rows_impl`], widened to AVX2 lanes.
/// Same ops in the same per-element order — see [`block_rows`].
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn block_rows_avx2(
    a: &[f32],
    b: &[f32],
    rows: std::ops::Range<usize>,
    out_rows: &mut [f32],
    k: usize,
    n: usize,
) {
    block_rows_impl(a, b, rows, out_rows, k, n);
}

#[inline(always)]
fn block_rows_impl(
    a: &[f32],
    b: &[f32],
    rows: std::ops::Range<usize>,
    out_rows: &mut [f32],
    k: usize,
    n: usize,
) {
    let row0 = rows.start;
    let mut i = rows.start;
    while i < rows.end {
        let mr = MR.min(rows.end - i);
        let mut jt = 0;
        while jt < n {
            let jw = NR.min(n - jt);
            if mr == MR && jw == NR {
                // Full tile: constant trip counts let the accumulators live
                // in registers across the whole k sweep.
                let a0 = &a[i * k..(i + 1) * k];
                let a1 = &a[(i + 1) * k..(i + 2) * k];
                let a2 = &a[(i + 2) * k..(i + 3) * k];
                let a3 = &a[(i + 3) * k..(i + 4) * k];
                let mut acc = [[0.0f32; NR]; MR];
                for kk in 0..k {
                    let b_seg: &[f32; NR] = b[kk * n + jt..kk * n + jt + NR]
                        .try_into()
                        .expect("NR-wide");
                    let (v0, v1, v2, v3) = (a0[kk], a1[kk], a2[kk], a3[kk]);
                    for j in 0..NR {
                        acc[0][j] += v0 * b_seg[j];
                        acc[1][j] += v1 * b_seg[j];
                        acc[2][j] += v2 * b_seg[j];
                        acc[3][j] += v3 * b_seg[j];
                    }
                }
                for (r, acc_row) in acc.iter().enumerate() {
                    let base = (i - row0 + r) * n + jt;
                    out_rows[base..base + NR].copy_from_slice(acc_row);
                }
            } else {
                // Remainder rows/columns: same kk-increasing accumulation
                // into a partial tile.
                for r in 0..mr {
                    let mut acc = [0.0f32; NR];
                    let a_row = &a[(i + r) * k..(i + r + 1) * k];
                    for (kk, &av) in a_row.iter().enumerate() {
                        let b_seg = &b[kk * n + jt..kk * n + jt + jw];
                        for (o, &bv) in acc.iter_mut().zip(b_seg) {
                            *o += av * bv;
                        }
                    }
                    let base = (i - row0 + r) * n + jt;
                    out_rows[base..base + jw].copy_from_slice(&acc[..jw]);
                }
            }
            jt += jw;
        }
        i += mr;
    }
}

/// Multiplies `a [m, k] x b [k, n]` into `out [m * n]`, overwriting `out`.
///
/// This is the allocation-free core of [`matmul`], exposed so callers with
/// reusable scratch buffers (im2col convolution, benchmarks) can skip the
/// per-call `Tensor` allocation. Parallelizes over output rows above an
/// internal work threshold; pass `allow_parallel = false` when calling from
/// inside an already-parallel region to avoid nested thread fan-out.
///
/// # Panics
///
/// Panics if the slice lengths disagree with `m`, `k`, `n`.
pub fn matmul_into(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    allow_parallel: bool,
) {
    crate::opcount::count_matmul();
    assert_eq!(a.len(), m * k, "lhs length != m*k");
    assert_eq!(b.len(), k * n, "rhs length != k*n");
    assert_eq!(out.len(), m * n, "out length != m*n");
    // No zero-fill needed: block_rows overwrites every output element.
    if allow_parallel && m * n * k >= PARALLEL_MACS && m > 1 {
        parallel::for_each_chunk_mut(out, n, |chunk_idx, rows, slab| {
            block_rows(a, b, chunk_idx..chunk_idx + rows, slab, k, n);
        });
    } else {
        block_rows(a, b, 0..m, out, k, n);
    }
}

/// Multiplies two rank-2 tensors: `[m, k] x [k, n] -> [m, n]`.
///
/// Uses a register-blocked microkernel (`MR` output rows share each loaded
/// `b` row, columns processed in `NR`-wide tiles) and parallelizes over
/// output rows for large problems. Accumulation order per output element is
/// identical in the serial and parallel paths, so results do not depend on
/// the thread count.
///
/// # Panics
///
/// Panics if either input is not rank 2 or the inner dimensions disagree.
///
/// # Example
///
/// ```
/// use rustfi_tensor::{matmul, Tensor};
///
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
/// let i = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2]);
/// assert_eq!(matmul(&a, &i), a);
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = a.dims2();
    let (k2, n) = b.dims2();
    assert_eq!(
        k,
        k2,
        "matmul inner dimension mismatch: {:?} x {:?}",
        a.dims(),
        b.dims()
    );
    let mut out = Tensor::from_pool(&[m, n]);
    matmul_into(a.data(), b.data(), out.data_mut(), m, k, n, true);
    out
}

/// Transposes an `[m, n]` row-major matrix in `src` into `dst` (`[n, m]`).
///
/// Allocation-free core of [`transpose`] for callers with scratch buffers.
///
/// # Panics
///
/// Panics if the slice lengths disagree with `m * n`.
pub fn transpose_into(src: &[f32], dst: &mut [f32], m: usize, n: usize) {
    assert_eq!(src.len(), m * n, "src length != m*n");
    assert_eq!(dst.len(), m * n, "dst length != m*n");
    for i in 0..m {
        for j in 0..n {
            dst[j * m + i] = src[i * n + j];
        }
    }
}

/// Transposes a rank-2 tensor.
///
/// # Panics
///
/// Panics if the input is not rank 2.
pub fn transpose(a: &Tensor) -> Tensor {
    let (m, n) = a.dims2();
    let mut out = Tensor::from_pool(&[n, m]);
    transpose_into(a.data(), out.data_mut(), m, n);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_small_known_values() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let b = Tensor::from_vec(vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]);
        let c = matmul(&a, &b);
        assert_eq!(c.dims(), &[2, 2]);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Tensor::from_fn(&[4, 4], |i| i as f32);
        let mut eye = Tensor::zeros(&[4, 4]);
        for i in 0..4 {
            eye.set(&[i, i], 1.0);
        }
        assert_eq!(matmul(&a, &eye), a);
        assert_eq!(matmul(&eye, &a), a);
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn matmul_rejects_mismatch() {
        matmul(&Tensor::zeros(&[2, 3]), &Tensor::zeros(&[2, 2]));
    }

    #[test]
    fn parallel_path_matches_serial() {
        use crate::rng::SeededRng;
        let mut rng = SeededRng::new(1);
        // Big enough to cross PARALLEL_MACS.
        let a = Tensor::rand_normal(&[128, 96], 0.0, 1.0, &mut rng);
        let b = Tensor::rand_normal(&[96, 128], 0.0, 1.0, &mut rng);
        let fast = matmul(&a, &b);
        // Serial reference.
        let (m, k) = a.dims2();
        let (_, n) = b.dims2();
        let mut reference = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut s = 0.0;
                for kk in 0..k {
                    s += a.data()[i * k + kk] * b.data()[kk * n + j];
                }
                reference[i * n + j] = s;
            }
        }
        for (x, y) in fast.data().iter().zip(&reference) {
            assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    #[test]
    fn blocked_kernel_is_thread_count_and_shape_invariant() {
        use crate::rng::SeededRng;
        let mut rng = SeededRng::new(7);
        // Odd sizes exercise the remainder-row path and partial column tiles.
        for &(m, k, n) in &[(1usize, 37usize, 130usize), (5, 9, 3), (131, 64, 129)] {
            let a = Tensor::rand_normal(&[m, k], 0.0, 1.0, &mut rng);
            let b = Tensor::rand_normal(&[k, n], 0.0, 1.0, &mut rng);
            let mut serial = vec![0.0f32; m * n];
            matmul_into(a.data(), b.data(), &mut serial, m, k, n, false);
            // The Tensor front-end may take the parallel path; results must
            // match bit-for-bit because per-element accumulation order is
            // identical.
            assert_eq!(matmul(&a, &b).data(), &serial[..], "{m}x{k}x{n}");
        }
    }

    #[test]
    fn simd_dispatch_is_bit_identical_to_portable_kernel() {
        use crate::rng::SeededRng;
        let mut rng = SeededRng::new(23);
        // Full tiles, remainder rows, and partial column tiles all compared
        // against the portable compilation. On CPUs with AVX2 this pins the
        // dispatched path to the exact bits of the portable one; without it,
        // both sides run the same code and the test is trivially green.
        for &(m, k, n) in &[(8usize, 64usize, 48usize), (5, 37, 19), (1, 7, 3)] {
            let a = Tensor::rand_normal(&[m, k], 0.0, 1.0, &mut rng);
            let b = Tensor::rand_normal(&[k, n], 0.0, 1.0, &mut rng);
            let mut portable = vec![0.0f32; m * n];
            block_rows_impl(a.data(), b.data(), 0..m, &mut portable, k, n);
            assert_eq!(matmul(&a, &b).data(), &portable[..], "{m}x{k}x{n}");
        }
    }

    #[test]
    fn matmul_into_overwrites_dirty_scratch() {
        let a = [1.0f32, 2.0, 3.0, 4.0];
        let b = [1.0f32, 0.0, 0.0, 1.0];
        let mut out = [9.0f32; 4];
        matmul_into(&a, &b, &mut out, 2, 2, 2, false);
        assert_eq!(out, a);
    }

    #[test]
    fn zeros_times_infinity_is_nan_not_skipped() {
        // The old kernel skipped `a` zeros, silently turning 0 * inf into 0.
        // IEEE says NaN; the blocked kernel must not special-case zeros.
        let a = Tensor::from_vec(vec![0.0f32], &[1, 1]);
        let b = Tensor::from_vec(vec![f32::INFINITY], &[1, 1]);
        assert!(matmul(&a, &b).data()[0].is_nan());
    }

    #[test]
    fn transpose_involution() {
        let a = Tensor::from_fn(&[3, 5], |i| i as f32);
        let t = transpose(&a);
        assert_eq!(t.dims(), &[5, 3]);
        assert_eq!(t.at(&[4, 2]), a.at(&[2, 4]));
        assert_eq!(transpose(&t), a);
    }
}
