//! Stored-INT8 tensors and the quantized convolution / linear kernels.
//!
//! [`QTensor`] is contiguous `i8` storage plus a per-tensor or per-channel
//! (axis 0) scale vector. [`conv2d_q`] and [`linear_q`] run real integer
//! inference on it: the f32 input is quantized once against a *static*
//! calibrated scale, lowered with an `i8` im2row, multiplied with the
//! AVX2-dispatched [`matmul_i8_nt`] kernel, and dequantized back to f32 with
//! the combined input×weight scale plus the f32 bias. Every float→int
//! conversion goes through [`qkernels`](crate::qkernels), so the stored words
//! match the f32 quantization simulation bit for bit.
//!
//! Both kernels are element-independent per batch sample (the input scale is
//! static, not derived from the batch), so a batched forward over duplicated
//! samples produces each slice bit-identical to a batch-1 forward — the
//! property trial fusion relies on.
//!
//! Scratch buffers come from a thread-local cache like the f32 conv path
//! (`i8`/`i32` slabs cannot live in the f32 tensor pool), so warmed quantized
//! forwards allocate nothing.

use crate::conv::ConvSpec;
use crate::pack::{Act, BnFoldView, GatherPlan, PackedI16};
use crate::qkernels::{
    dequant_bias_row, dequant_bias_rows, dequantize_slice, matmul_i8_nt, matmul_i8_nt_wa,
    matmul_i8_nt_wb, quantize_slice, requantize_slice, scale_for_max_abs, slice_max_abs_finite,
};
use crate::tensor::Tensor;

/// Threshold (in multiply–accumulate operations) above which [`conv2d_q`]
/// parallelizes across batch elements; matches the f32 conv threshold.
const PARALLEL_BATCH_MACS: usize = 1 << 20;

/// A quantized tensor: contiguous `i8` words plus the scale(s) that map them
/// back to f32.
///
/// `scales` holds either one per-tensor scale or one scale per slice of
/// axis 0 (per-output-channel for conv/linear weights).
#[derive(Debug, Clone, PartialEq)]
pub struct QTensor {
    data: Vec<i8>,
    dims: Vec<usize>,
    scales: Vec<f32>,
}

impl QTensor {
    /// Quantizes `t` with one dynamic-range scale for the whole tensor.
    pub fn quantize_per_tensor(t: &Tensor) -> Self {
        let scale = scale_for_max_abs(slice_max_abs_finite(t.data()));
        let mut data = vec![0i8; t.len()];
        quantize_slice(t.data(), scale, &mut data);
        Self {
            data,
            dims: t.dims().to_vec(),
            scales: vec![scale],
        }
    }

    /// Quantizes `t` with one dynamic-range scale per slice of axis 0
    /// (the output-channel axis for `[oc, ...]` weight tensors).
    ///
    /// # Panics
    ///
    /// Panics on a rank-0 or empty tensor.
    pub fn quantize_per_channel(t: &Tensor) -> Self {
        let channels = *t.dims().first().expect("rank >= 1");
        assert!(channels > 0, "cannot per-channel quantize an empty tensor");
        let stride = t.len() / channels;
        let mut data = vec![0i8; t.len()];
        let mut scales = Vec::with_capacity(channels);
        for (c, dst) in data.chunks_exact_mut(stride).enumerate() {
            let src = &t.data()[c * stride..(c + 1) * stride];
            let scale = scale_for_max_abs(slice_max_abs_finite(src));
            quantize_slice(src, scale, dst);
            scales.push(scale);
        }
        Self {
            data,
            dims: t.dims().to_vec(),
            scales,
        }
    }

    /// The stored words.
    pub fn data(&self) -> &[i8] {
        &self.data
    }

    /// Mutable access to the stored words — this is where quantized-domain
    /// fault injection flips bits.
    pub fn data_mut(&mut self) -> &mut [i8] {
        &mut self.data
    }

    /// The dimensions.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of stored words.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor holds no words.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Whether the tensor carries one scale per axis-0 slice.
    pub fn is_per_channel(&self) -> bool {
        self.scales.len() > 1
    }

    /// The scale vector (length 1 or `dims[0]`).
    pub fn scales(&self) -> &[f32] {
        &self.scales
    }

    /// The scale of axis-0 slice `c` (the per-tensor scale if uniform).
    pub fn channel_scale(&self, c: usize) -> f32 {
        if self.scales.len() == 1 {
            self.scales[0]
        } else {
            self.scales[c]
        }
    }

    /// The scale that applies to the word at flat index `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    pub fn scale_for_index(&self, idx: usize) -> f32 {
        assert!(idx < self.data.len(), "index {idx} out of bounds");
        let stride = self.data.len() / self.scales.len().max(1);
        self.channel_scale(idx / stride.max(1))
    }

    /// Dequantizes back to an f32 tensor.
    pub fn dequantize(&self) -> Tensor {
        let mut out = Tensor::from_pool(self.dims());
        let stride = self.data.len() / self.scales.len().max(1);
        for (c, &scale) in self.scales.iter().enumerate() {
            dequantize_slice(
                &self.data[c * stride..(c + 1) * stride],
                scale,
                &mut out.data_mut()[c * stride..(c + 1) * stride],
            );
        }
        out
    }

    /// Re-grids every word onto new per-slice scales (same layout as
    /// [`scales`](Self::scales)).
    ///
    /// # Panics
    ///
    /// Panics if `new_scales` has a different length than the current scale
    /// vector or contains a non-positive scale.
    pub fn requantize(&mut self, new_scales: &[f32]) {
        assert_eq!(new_scales.len(), self.scales.len(), "scale layout change");
        let stride = self.data.len() / self.scales.len().max(1);
        for (c, &s_out) in new_scales.iter().enumerate() {
            let words = &mut self.data[c * stride..(c + 1) * stride];
            let s_in = self.scales[c];
            // In-place: requantize_slice reads each word before writing it.
            let src: Vec<i8> = words.to_vec();
            requantize_slice(&src, s_in, s_out, words);
            self.scales[c] = s_out;
        }
    }
}

/// Runs `f` with this thread's reusable `i8`/`i32` quantized-kernel scratch,
/// sized to at least the requested lengths. Mirrors the f32 conv scratch:
/// stale contents are harmless because every kernel overwrites (or
/// zero-fills) the elements it exposes, and reuse keeps warmed quantized
/// forwards allocation-free.
fn with_q_scratch(
    qin_len: usize,
    rows_len: usize,
    acc_len: usize,
    f: impl FnOnce(&mut [i8], &mut [i8], &mut [i32]),
) {
    use std::cell::RefCell;
    thread_local! {
        static SCRATCH: RefCell<(Vec<i8>, Vec<i8>, Vec<i32>)> =
            const { RefCell::new((Vec::new(), Vec::new(), Vec::new())) };
    }
    SCRATCH.with(|cell| {
        let mut guard = cell.borrow_mut();
        let (qin, rows, acc) = &mut *guard;
        if qin.len() < qin_len {
            qin.resize(qin_len, 0);
        }
        if rows.len() < rows_len {
            rows.resize(rows_len, 0);
        }
        if acc.len() < acc_len {
            acc.resize(acc_len, 0);
        }
        f(
            &mut qin[..qin_len],
            &mut rows[..rows_len],
            &mut acc[..acc_len],
        );
    });
}

/// Lowers one sample's group slice of the quantized input into an im2row
/// matrix of shape `[oh*ow, cg*kh*kw]` — one receptive-field patch per row,
/// the transposed-`b` layout [`matmul_i8_nt`] wants. Zero-fills first, then
/// scatters the in-bounds elements, so padding needs no special casing.
#[allow(clippy::too_many_arguments)]
fn im2row_i8(
    qin: &[i8],
    h: usize,
    w: usize,
    c_start: usize,
    cg: usize,
    kh: usize,
    kw: usize,
    spec: &ConvSpec,
    oh: usize,
    ow: usize,
    rows: &mut [i8],
) {
    let kcols = cg * kh * kw;
    assert_eq!(rows.len(), oh * ow * kcols, "im2row scratch size");
    rows.fill(0);
    for c in 0..cg {
        let fm = &qin[(c_start + c) * h * w..(c_start + c + 1) * h * w];
        for ky in 0..kh {
            for kx in 0..kw {
                let col = (c * kh + ky) * kw + kx;
                for oy in 0..oh {
                    let iy = (oy * spec.stride + ky) as isize - spec.padding as isize;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    let src = &fm[iy as usize * w..(iy as usize + 1) * w];
                    for ox in 0..ow {
                        let ix = (ox * spec.stride + kx) as isize - spec.padding as isize;
                        if ix < 0 || ix >= w as isize {
                            continue;
                        }
                        rows[(oy * ow + ox) * kcols + col] = src[ix as usize];
                    }
                }
            }
        }
    }
}

/// Compiled im2row plan: a [`GatherPlan`] lowering one quantized sample's
/// group slice (`[cg, h, w]` of `i8` words, contiguous) into the
/// `[oh*ow, cg*kh*kw]` im2row matrix that [`conv2d_q_planned`] feeds its
/// pre-widened integer GEMM. The INT8 analogue of
/// [`Im2colPlan`](crate::conv::Im2colPlan): same geometry-only build, same
/// bit-identity to the on-the-fly `im2row_i8` lowering, transposed
/// destination layout.
#[derive(Debug, Clone)]
pub struct Im2rowPlan {
    cg: usize,
    h: usize,
    w: usize,
    map: GatherPlan,
}

impl Im2rowPlan {
    /// Builds the plan for a `[cg, h, w]` group slice under `kernel` and
    /// `spec`.
    pub fn build(cg: usize, h: usize, w: usize, kernel: (usize, usize), spec: &ConvSpec) -> Self {
        let (kh, kw) = kernel;
        let oh = spec.out_size(h, kh);
        let ow = spec.out_size(w, kw);
        let kcols = cg * kh * kw;
        let mut idx = vec![GatherPlan::PAD; oh * ow * kcols];
        for c in 0..cg {
            for ky in 0..kh {
                for kx in 0..kw {
                    let col = (c * kh + ky) * kw + kx;
                    for oy in 0..oh {
                        let iy = (oy * spec.stride + ky) as isize - spec.padding as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        for ox in 0..ow {
                            let ix = (ox * spec.stride + kx) as isize - spec.padding as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            idx[(oy * ow + ox) * kcols + col] =
                                ((c * h + iy as usize) * w + ix as usize) as u32;
                        }
                    }
                }
            }
        }
        Self {
            cg,
            h,
            w,
            map: GatherPlan::new(cg * h * w, idx),
        }
    }

    /// Whether the plan was built for this group-slice shape.
    pub fn matches(&self, cg: usize, h: usize, w: usize) -> bool {
        self.cg == cg && self.h == h && self.w == w
    }
}

/// Quantized 2-D convolution: integer GEMM over stored `i8` words.
///
/// - `input`: f32 `[n, c, h, w]`, quantized internally against the static
///   calibrated `input_scale` (out-of-range activations saturate at ±127)
/// - `qweight`: per-channel quantized `[oc, c/groups, kh, kw]`
/// - `bias`: f32 `[oc]`, added after dequantization
///
/// Returns f32 `[n, oc, oh, ow]` like [`conv2d`](crate::conv2d).
///
/// # Panics
///
/// Panics if shapes, the spec, or `input_scale` are inconsistent.
pub fn conv2d_q(
    input: &Tensor,
    qweight: &QTensor,
    bias: &Tensor,
    spec: &ConvSpec,
    input_scale: f32,
) -> Tensor {
    crate::opcount::count_conv2d();
    let (n, c, h, w) = input.dims4();
    let wd = qweight.dims();
    assert_eq!(wd.len(), 4, "weight must be rank 4");
    let (oc, wc, kh, kw) = (wd[0], wd[1], wd[2], wd[3]);
    assert!(spec.groups > 0 && spec.stride > 0, "bad conv spec");
    assert_eq!(c % spec.groups, 0, "in_channels not divisible by groups");
    assert_eq!(oc % spec.groups, 0, "out_channels not divisible by groups");
    assert_eq!(wc, c / spec.groups, "weight channel mismatch");
    assert_eq!(bias.len(), oc, "bias length != out_channels");
    assert!(input_scale > 0.0, "input scale must be positive");
    let oh = spec.out_size(h, kh);
    let ow = spec.out_size(w, kw);
    let cg = c / spec.groups;
    let og = oc / spec.groups;
    let kcols = cg * kh * kw;
    let ohw = oh * ow;
    let chw = c * h * w;

    let bdata = bias.data();
    let spec = *spec;

    // Fully overwritten below, so the buffer may come from the pool dirty.
    let mut out = Tensor::from_pool(&[n, oc, oh, ow]);
    let batch_stride = oc * ohw;

    let run_batch =
        |bn: usize, out_bn: &mut [f32], qin: &mut [i8], rows: &mut [i8], acc: &mut [i32]| {
            // One static-scale quantization of this sample's input slab; every
            // group's im2row reads from it.
            quantize_slice(&input.data()[bn * chw..(bn + 1) * chw], input_scale, qin);
            for g in 0..spec.groups {
                im2row_i8(qin, h, w, g * cg, cg, kh, kw, &spec, oh, ow, rows);
                let wslab = &qweight.data()[g * og * kcols..(g + 1) * og * kcols];
                matmul_i8_nt(wslab, rows, acc, og, kcols, ohw);
                for o in 0..og {
                    let oc_idx = g * og + o;
                    dequant_bias_row(
                        &acc[o * ohw..(o + 1) * ohw],
                        input_scale * qweight.channel_scale(oc_idx),
                        bdata[oc_idx],
                        &mut out_bn[oc_idx * ohw..(oc_idx + 1) * ohw],
                    );
                }
            }
        };

    let total_macs = n * oc * ohw * kcols;
    if n > 1 && total_macs >= PARALLEL_BATCH_MACS {
        crate::parallel::for_each_chunk_mut(out.data_mut(), batch_stride, |start, items, slab| {
            with_q_scratch(chw, ohw * kcols, og * ohw, |qin, rows, acc| {
                for i in 0..items {
                    let out_bn = &mut slab[i * batch_stride..(i + 1) * batch_stride];
                    run_batch(start + i, out_bn, qin, rows, acc);
                }
            });
        });
    } else {
        let out_data = out.data_mut();
        with_q_scratch(chw, ohw * kcols, og * ohw, |qin, rows, acc| {
            for bn in 0..n {
                let out_bn = &mut out_data[bn * batch_stride..(bn + 1) * batch_stride];
                run_batch(bn, out_bn, qin, rows, acc);
            }
        });
    }
    out
}

/// Dequantizes one integer GEMM row and applies the fused epilogue with the
/// exact per-element op order of the serial chain: `dequant_bias_row`'s
/// `s as f32 * scale + bias`, then the folded batch-norm expression, then
/// the activation.
#[inline(always)]
fn dequant_epilogue_row(
    acc: &[i32],
    scale: f32,
    bias: f32,
    bnc: Option<(f32, f32, f32, f32)>,
    act: Act,
    out: &mut [f32],
) {
    match bnc {
        None => {
            for (o, &s) in out.iter_mut().zip(acc) {
                *o = act.apply(s as f32 * scale + bias);
            }
        }
        Some((mean, inv_std, gamma, beta)) => {
            for (o, &s) in out.iter_mut().zip(acc) {
                let v = s as f32 * scale + bias;
                let n = (v - mean) * inv_std;
                *o = act.apply(gamma * n + beta);
            }
        }
    }
}

/// Quantized 2-D convolution through a compiled plan: the weight slabs are
/// pre-widened to `i16` panels ([`PackedI16`], one per group) and the
/// dequantize + bias + optional batch-norm + activation chain is fused into
/// the write-back loop.
///
/// Bit-identical to [`conv2d_q`] followed by the standalone batch-norm /
/// activation kernels: widening is exact, integer accumulation is exact, and
/// the fused epilogue replicates the serial per-element op order.
///
/// # Panics
///
/// Panics if shapes, the spec, the panels, or `input_scale` are
/// inconsistent.
#[allow(clippy::too_many_arguments)]
pub fn conv2d_q_planned(
    input: &Tensor,
    qweight: &QTensor,
    panels: &[PackedI16],
    plan: &Im2rowPlan,
    bias: &Tensor,
    spec: &ConvSpec,
    input_scale: f32,
    bn: Option<BnFoldView<'_>>,
    act: Act,
) -> Tensor {
    crate::opcount::count_conv2d();
    let (n, c, h, w) = input.dims4();
    let wd = qweight.dims();
    assert_eq!(wd.len(), 4, "weight must be rank 4");
    let (oc, wc, kh, kw) = (wd[0], wd[1], wd[2], wd[3]);
    assert!(spec.groups > 0 && spec.stride > 0, "bad conv spec");
    assert_eq!(c % spec.groups, 0, "in_channels not divisible by groups");
    assert_eq!(oc % spec.groups, 0, "out_channels not divisible by groups");
    assert_eq!(wc, c / spec.groups, "weight channel mismatch");
    assert_eq!(bias.len(), oc, "bias length != out_channels");
    assert!(input_scale > 0.0, "input scale must be positive");
    assert_eq!(panels.len(), spec.groups, "one widened panel per group");
    let oh = spec.out_size(h, kh);
    let ow = spec.out_size(w, kw);
    let cg = c / spec.groups;
    let og = oc / spec.groups;
    let kcols = cg * kh * kw;
    let ohw = oh * ow;
    let chw = c * h * w;
    for p in panels {
        assert_eq!(p.rows(), og, "panel row mismatch");
        assert_eq!(p.k(), kcols, "panel k mismatch");
    }
    assert!(plan.matches(cg, h, w), "gather plan shape mismatch");
    assert_eq!(plan.map.len(), ohw * kcols, "gather plan size mismatch");
    let ghw = cg * h * w;

    let bdata = bias.data();

    // The epilogue writes every element exactly once, so the buffer may come
    // from the pool dirty.
    let mut out = Tensor::from_pool(&[n, oc, oh, ow]);
    let batch_stride = oc * ohw;

    let run_batch =
        |bn_idx: usize, out_bn: &mut [f32], qin: &mut [i8], rows: &mut [i8], acc: &mut [i32]| {
            quantize_slice(
                &input.data()[bn_idx * chw..(bn_idx + 1) * chw],
                input_scale,
                qin,
            );
            for (g, panel) in panels.iter().enumerate() {
                plan.map.gather(&qin[g * ghw..(g + 1) * ghw], rows);
                matmul_i8_nt_wa(panel, rows, acc, ohw);
                for o in 0..og {
                    let oc_idx = g * og + o;
                    let bnc = bn.map(|f| {
                        (
                            f.mean[oc_idx],
                            f.inv_std[oc_idx],
                            f.gamma[oc_idx],
                            f.beta[oc_idx],
                        )
                    });
                    dequant_epilogue_row(
                        &acc[o * ohw..(o + 1) * ohw],
                        input_scale * qweight.channel_scale(oc_idx),
                        bdata[oc_idx],
                        bnc,
                        act,
                        &mut out_bn[oc_idx * ohw..(oc_idx + 1) * ohw],
                    );
                }
            }
        };

    let total_macs = n * oc * ohw * kcols;
    if n > 1 && total_macs >= PARALLEL_BATCH_MACS {
        crate::parallel::for_each_chunk_mut(out.data_mut(), batch_stride, |start, items, slab| {
            with_q_scratch(chw, ohw * kcols, og * ohw, |qin, rows, acc| {
                for i in 0..items {
                    let out_bn = &mut slab[i * batch_stride..(i + 1) * batch_stride];
                    run_batch(start + i, out_bn, qin, rows, acc);
                }
            });
        });
    } else {
        let out_data = out.data_mut();
        with_q_scratch(chw, ohw * kcols, og * ohw, |qin, rows, acc| {
            for bn_idx in 0..n {
                let out_bn = &mut out_data[bn_idx * batch_stride..(bn_idx + 1) * batch_stride];
                run_batch(bn_idx, out_bn, qin, rows, acc);
            }
        });
    }
    out
}

/// Quantized linear layer through a compiled plan: pre-widened weight rows
/// and a fused dequantize + bias + activation write-back. Bit-identical to
/// [`linear_q`] followed by the standalone activation kernel — including the
/// per-tensor-scale path, which replicates `dequant_bias_row(.., 0.0)`
/// followed by the separate bias add exactly.
///
/// # Panics
///
/// Panics if shapes, the panel, or `input_scale` are inconsistent.
pub fn linear_q_planned(
    input: &Tensor,
    qweight: &QTensor,
    panel: &PackedI16,
    bias: &Tensor,
    input_scale: f32,
    act: Act,
) -> Tensor {
    let (batch, in_f) = input.dims2();
    let wd = qweight.dims();
    assert_eq!(wd.len(), 2, "weight must be rank 2");
    let (out_f, w_in) = (wd[0], wd[1]);
    assert_eq!(w_in, in_f, "weight expects {w_in} inputs, got {in_f}");
    assert_eq!(bias.len(), out_f, "bias length != out_features");
    assert!(input_scale > 0.0, "input scale must be positive");
    assert_eq!(panel.rows(), out_f, "panel row mismatch");
    assert_eq!(panel.k(), in_f, "panel k mismatch");

    let mut out = Tensor::from_pool(&[batch, out_f]);
    with_q_scratch(batch * in_f, 0, batch * out_f, |qx, _rows, acc| {
        quantize_slice(input.data(), input_scale, qx);
        matmul_i8_nt_wb(qx, panel, acc, batch);
        let bdata = bias.data();
        if qweight.is_per_channel() {
            let scales = qweight.scales();
            for (acc_row, out_row) in acc
                .chunks_exact(out_f)
                .zip(out.data_mut().chunks_exact_mut(out_f))
            {
                // Same per-element expression as `dequant_bias_rows`.
                for (((o, &s), &ws), &b) in out_row.iter_mut().zip(acc_row).zip(scales).zip(bdata) {
                    *o = act.apply(s as f32 * (input_scale * ws) + b);
                }
            }
        } else {
            let scale = input_scale * qweight.channel_scale(0);
            for (acc_row, out_row) in acc
                .chunks_exact(out_f)
                .zip(out.data_mut().chunks_exact_mut(out_f))
            {
                // Two-step on purpose: the serial chain dequantizes with a
                // zero bias and adds the f32 bias in a second pass, and the
                // intermediate `+ 0.0` can flip a negative-zero sign.
                for ((o, &s), &b) in out_row.iter_mut().zip(acc_row).zip(bdata) {
                    let v = s as f32 * scale + 0.0;
                    *o = act.apply(v + b);
                }
            }
        }
    });
    out
}

/// Quantized linear layer: `y = dequant(qx · qWᵀ) + bias`.
///
/// - `input`: f32 `[batch, in_features]`, quantized against the static
///   `input_scale`
/// - `qweight`: per-channel quantized `[out_features, in_features]` — the
///   natural `[out, in]` weight layout is already the transposed-`b` layout
///   the integer GEMM wants, so no transpose scratch is needed
/// - `bias`: f32 `[out_features]`
///
/// # Panics
///
/// Panics if shapes or `input_scale` are inconsistent.
pub fn linear_q(input: &Tensor, qweight: &QTensor, bias: &Tensor, input_scale: f32) -> Tensor {
    let (batch, in_f) = input.dims2();
    let wd = qweight.dims();
    assert_eq!(wd.len(), 2, "weight must be rank 2");
    let (out_f, w_in) = (wd[0], wd[1]);
    assert_eq!(w_in, in_f, "weight expects {w_in} inputs, got {in_f}");
    assert_eq!(bias.len(), out_f, "bias length != out_features");
    assert!(input_scale > 0.0, "input scale must be positive");

    let mut out = Tensor::from_pool(&[batch, out_f]);
    with_q_scratch(batch * in_f, 0, batch * out_f, |qx, _rows, acc| {
        quantize_slice(input.data(), input_scale, qx);
        matmul_i8_nt(qx, qweight.data(), acc, batch, in_f, out_f);
        if qweight.is_per_channel() {
            dequant_bias_rows(
                acc,
                input_scale,
                qweight.scales(),
                bias.data(),
                out.data_mut(),
            );
        } else {
            let scale = input_scale * qweight.channel_scale(0);
            for (acc_row, out_row) in acc
                .chunks_exact(out_f)
                .zip(out.data_mut().chunks_exact_mut(out_f))
            {
                dequant_bias_row(acc_row, scale, 0.0, out_row);
                crate::kernels::add_assign(out_row, bias.data());
            }
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv::conv2d;
    use crate::qkernels::{dequantize_one, quantize_one};
    use crate::rng::SeededRng;

    #[test]
    fn qtensor_roundtrip_error_below_half_step() {
        let mut rng = SeededRng::new(5);
        let t = Tensor::rand_normal(&[4, 3, 3, 3], 0.0, 1.0, &mut rng);
        for q in [
            QTensor::quantize_per_tensor(&t),
            QTensor::quantize_per_channel(&t),
        ] {
            let back = q.dequantize();
            for (i, (&x, &y)) in t.data().iter().zip(back.data()).enumerate() {
                let step = q.scale_for_index(i);
                assert!((x - y).abs() <= step / 2.0 + 1e-6, "idx {i}: {x} vs {y}");
            }
        }
    }

    #[test]
    fn per_channel_scales_track_each_slice() {
        let t = Tensor::from_vec(vec![1.0, -1.0, 100.0, 50.0], &[2, 2]);
        let q = QTensor::quantize_per_channel(&t);
        assert!(q.is_per_channel());
        assert!(q.channel_scale(1) > q.channel_scale(0) * 50.0);
        assert_eq!(q.scale_for_index(0), q.channel_scale(0));
        assert_eq!(q.scale_for_index(3), q.channel_scale(1));
        // Each slice saturates its own grid at 127.
        assert_eq!(q.data()[2], 127);
        assert_eq!(q.data()[0], 127);
    }

    #[test]
    fn stored_words_match_scalar_quantization() {
        let mut rng = SeededRng::new(6);
        let t = Tensor::rand_normal(&[3, 8], 0.0, 2.0, &mut rng);
        let q = QTensor::quantize_per_channel(&t);
        for (i, &word) in q.data().iter().enumerate() {
            assert_eq!(word, quantize_one(t.data()[i], q.scale_for_index(i)));
        }
    }

    #[test]
    fn requantize_regrids_words() {
        let t = Tensor::from_vec(vec![1.0, -2.0, 0.5, 2.0], &[1, 4]);
        let mut q = QTensor::quantize_per_tensor(&t);
        let old_scale = q.channel_scale(0);
        let new_scale = old_scale * 2.0;
        q.requantize(&[new_scale]);
        assert_eq!(q.channel_scale(0), new_scale);
        for (i, &word) in q.data().iter().enumerate() {
            let expect = quantize_one(
                dequantize_one(quantize_one(t.data()[i], old_scale), old_scale),
                new_scale,
            );
            assert_eq!(word, expect, "idx {i}");
        }
    }

    /// Naive reference: fake-quantize input + weight, accumulate in f64-free
    /// integer space, dequantize. Exactly what conv2d_q must compute.
    fn conv2d_q_naive(
        input: &Tensor,
        qw: &QTensor,
        bias: &Tensor,
        spec: &ConvSpec,
        input_scale: f32,
    ) -> Tensor {
        let (n, c, h, w) = input.dims4();
        let (oc, _, kh, kw) = (qw.dims()[0], qw.dims()[1], qw.dims()[2], qw.dims()[3]);
        let oh = spec.out_size(h, kh);
        let ow = spec.out_size(w, kw);
        let cg = c / spec.groups;
        let og = oc / spec.groups;
        let mut out = Tensor::zeros(&[n, oc, oh, ow]);
        let wstride = cg * kh * kw;
        for bn in 0..n {
            for o in 0..oc {
                let g = o / og;
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc: i32 = 0;
                        for ci in 0..cg {
                            for ky in 0..kh {
                                for kx in 0..kw {
                                    let iy =
                                        (oy * spec.stride + ky) as isize - spec.padding as isize;
                                    let ix =
                                        (ox * spec.stride + kx) as isize - spec.padding as isize;
                                    if iy < 0 || ix < 0 || iy >= h as isize || ix >= w as isize {
                                        continue;
                                    }
                                    let x = input.at(&[bn, g * cg + ci, iy as usize, ix as usize]);
                                    let qx = quantize_one(x, input_scale) as i32;
                                    let qv =
                                        qw.data()[o * wstride + (ci * kh + ky) * kw + kx] as i32;
                                    acc += qx * qv;
                                }
                            }
                        }
                        let v = acc as f32 * (input_scale * qw.channel_scale(o)) + bias.data()[o];
                        out.set(&[bn, o, oy, ox], v);
                    }
                }
            }
        }
        out
    }

    #[test]
    fn conv2d_q_matches_naive_reference() {
        let mut rng = SeededRng::new(30);
        for spec in [
            ConvSpec::new().padding(1),
            ConvSpec::new().stride(2).padding(1),
            ConvSpec::new().padding(1).groups(2),
        ] {
            let x = Tensor::rand_normal(&[2, 4, 7, 7], 0.0, 1.0, &mut rng);
            let w = Tensor::rand_normal(&[4, 4 / spec.groups, 3, 3], 0.0, 0.5, &mut rng);
            let b = Tensor::rand_normal(&[4], 0.0, 0.1, &mut rng);
            let qw = QTensor::quantize_per_channel(&w);
            let scale = scale_for_max_abs(slice_max_abs_finite(x.data()));
            let fast = conv2d_q(&x, &qw, &b, &spec, scale);
            let slow = conv2d_q_naive(&x, &qw, &b, &spec, scale);
            assert_eq!(fast.dims(), slow.dims());
            for (a, e) in fast.data().iter().zip(slow.data()) {
                assert_eq!(a.to_bits(), e.to_bits(), "exact integer path");
            }
        }
    }

    #[test]
    fn conv2d_q_approximates_f32_conv() {
        let mut rng = SeededRng::new(31);
        let x = Tensor::rand_normal(&[1, 3, 8, 8], 0.0, 1.0, &mut rng);
        let w = Tensor::rand_normal(&[5, 3, 3, 3], 0.0, 0.5, &mut rng);
        let b = Tensor::rand_normal(&[5], 0.0, 0.1, &mut rng);
        let spec = ConvSpec::new().padding(1);
        let qw = QTensor::quantize_per_channel(&w);
        let scale = scale_for_max_abs(slice_max_abs_finite(x.data()));
        let qy = conv2d_q(&x, &qw, &b, &spec, scale);
        let fy = conv2d(&x, &w, &b, &spec);
        let max_abs = fy.data().iter().fold(0.0f32, |m, &v| m.max(v.abs()));
        for (a, e) in qy.data().iter().zip(fy.data()) {
            assert!(
                (a - e).abs() < 0.05 * max_abs.max(1.0),
                "quantized output should track f32: {a} vs {e}"
            );
        }
    }

    #[test]
    fn conv2d_q_is_batch_independent() {
        // A batched forward over duplicated samples must reproduce the
        // batch-1 result bit for bit in every slice — the fusion invariant.
        let mut rng = SeededRng::new(32);
        let x1 = Tensor::rand_normal(&[1, 3, 6, 6], 0.0, 1.0, &mut rng);
        let mut xb = Tensor::from_pool_zeroed(&[4, 3, 6, 6]);
        for bslot in 0..4 {
            xb.data_mut()[bslot * x1.len()..(bslot + 1) * x1.len()].copy_from_slice(x1.data());
        }
        let w = Tensor::rand_normal(&[4, 3, 3, 3], 0.0, 0.5, &mut rng);
        let b = Tensor::rand_normal(&[4], 0.0, 0.1, &mut rng);
        let spec = ConvSpec::new().padding(1);
        let qw = QTensor::quantize_per_channel(&w);
        let y1 = conv2d_q(&x1, &qw, &b, &spec, 0.01);
        let yb = conv2d_q(&xb, &qw, &b, &spec, 0.01);
        for bslot in 0..4 {
            assert_eq!(
                &yb.data()[bslot * y1.len()..(bslot + 1) * y1.len()],
                y1.data(),
                "slice {bslot}"
            );
        }
    }

    #[test]
    fn linear_q_matches_scalar_reference() {
        let mut rng = SeededRng::new(33);
        let x = Tensor::rand_normal(&[3, 10], 0.0, 1.0, &mut rng);
        let w = Tensor::rand_normal(&[6, 10], 0.0, 0.5, &mut rng);
        let b = Tensor::rand_normal(&[6], 0.0, 0.1, &mut rng);
        let scale = scale_for_max_abs(slice_max_abs_finite(x.data()));
        for qw in [
            QTensor::quantize_per_channel(&w),
            QTensor::quantize_per_tensor(&w),
        ] {
            let y = linear_q(&x, &qw, &b, scale);
            assert_eq!(y.dims(), &[3, 6]);
            for r in 0..3 {
                for o in 0..6 {
                    let mut acc = 0i32;
                    for k in 0..10 {
                        acc += quantize_one(x.at(&[r, k]), scale) as i32
                            * qw.data()[o * 10 + k] as i32;
                    }
                    let expect = acc as f32 * (scale * qw.channel_scale(o)) + b.data()[o];
                    let got = y.at(&[r, o]);
                    assert_eq!(got.to_bits(), expect.to_bits(), "[{r},{o}]");
                }
            }
        }
    }

    #[test]
    fn planned_conv_q_is_bit_identical_to_serial_chain() {
        let mut rng = SeededRng::new(40);
        for spec in [
            ConvSpec::new().padding(1),
            ConvSpec::new().padding(1).groups(2),
        ] {
            let x = Tensor::rand_normal(&[2, 4, 6, 6], 0.0, 1.0, &mut rng);
            let w = Tensor::rand_normal(&[4, 4 / spec.groups, 3, 3], 0.0, 0.5, &mut rng);
            let b = Tensor::rand_normal(&[4], 0.0, 0.1, &mut rng);
            let qw = QTensor::quantize_per_channel(&w);
            let scale = 0.02f32;
            let og = 4 / spec.groups;
            let kcols = (4 / spec.groups) * 9;
            let panels: Vec<PackedI16> = (0..spec.groups)
                .map(|g| {
                    PackedI16::widen(&qw.data()[g * og * kcols..(g + 1) * og * kcols], og, kcols)
                })
                .collect();

            // Serial chain: conv2d_q then a standalone ReLU pass.
            let mut serial = conv2d_q(&x, &qw, &b, &spec, scale);
            for v in serial.data_mut() {
                *v = v.max(0.0);
            }
            let plan = Im2rowPlan::build(4 / spec.groups, 6, 6, (3, 3), &spec);
            let fused =
                conv2d_q_planned(&x, &qw, &panels, &plan, &b, &spec, scale, None, Act::Relu);
            assert_eq!(fused.dims(), serial.dims());
            for (p, q) in fused.data().iter().zip(serial.data()) {
                assert_eq!(p.to_bits(), q.to_bits());
            }
        }
    }

    #[test]
    fn planned_linear_q_is_bit_identical_to_serial_chain() {
        let mut rng = SeededRng::new(41);
        let x = Tensor::rand_normal(&[3, 10], 0.0, 1.0, &mut rng);
        let w = Tensor::rand_normal(&[6, 10], 0.0, 0.5, &mut rng);
        let b = Tensor::rand_normal(&[6], 0.0, 0.1, &mut rng);
        let scale = 0.015f32;
        for qw in [
            QTensor::quantize_per_channel(&w),
            QTensor::quantize_per_tensor(&w),
        ] {
            let panel = PackedI16::widen(qw.data(), 6, 10);
            let mut serial = linear_q(&x, &qw, &b, scale);
            for v in serial.data_mut() {
                *v = v.max(0.0);
            }
            let fused = linear_q_planned(&x, &qw, &panel, &b, scale, Act::Relu);
            for (p, q) in fused.data().iter().zip(serial.data()) {
                assert_eq!(p.to_bits(), q.to_bits());
            }
        }
    }

    #[test]
    fn non_finite_activations_saturate_not_poison() {
        // An upstream fault can push activations to ±∞/NaN; the quantized
        // layer must stay finite (saturating quantization).
        let x = Tensor::from_vec(
            vec![f32::INFINITY, f32::NEG_INFINITY, f32::NAN, 1.0],
            &[1, 4],
        );
        let w = Tensor::ones(&[2, 4]);
        let b = Tensor::zeros(&[2]);
        let y = linear_q(&x, &QTensor::quantize_per_channel(&w), &b, 0.1);
        assert!(!y.has_non_finite());
    }
}
