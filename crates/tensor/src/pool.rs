//! Max and average pooling and their gradients.

use crate::kernels;
use crate::opcount;
use crate::tensor::Tensor;

/// Geometry of a pooling operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolSpec {
    /// Square window size.
    pub kernel: usize,
    /// Step between windows.
    pub stride: usize,
}

impl PoolSpec {
    /// A `kernel`-sized window moving by `stride`.
    ///
    /// # Panics
    ///
    /// Panics if either is zero.
    pub fn new(kernel: usize, stride: usize) -> Self {
        assert!(
            kernel > 0 && stride > 0,
            "pool kernel/stride must be positive"
        );
        Self { kernel, stride }
    }

    /// Output spatial extent for an input extent.
    ///
    /// # Panics
    ///
    /// Panics if the window is larger than the input.
    pub fn out_size(&self, in_size: usize) -> usize {
        self.checked_out_size(in_size)
            .unwrap_or_else(|| panic!("pool window {} larger than input {in_size}", self.kernel))
    }

    /// Non-panicking [`PoolSpec::out_size`]: `None` when the window is larger
    /// than the input.
    pub fn checked_out_size(&self, in_size: usize) -> Option<usize> {
        if in_size < self.kernel {
            return None;
        }
        Some((in_size - self.kernel) / self.stride + 1)
    }
}

/// Max pooling over an `NCHW` tensor.
///
/// Returns the pooled tensor and the flat within-feature-map index of each
/// selected maximum (needed by [`max_pool2d_backward`]).
///
/// # Panics
///
/// Panics if the input is not rank 4 or the window does not fit.
pub fn max_pool2d(input: &Tensor, spec: &PoolSpec) -> (Tensor, Vec<usize>) {
    let mut out = Tensor::default();
    let mut argmax = Vec::new();
    max_pool2d_into(input, spec, &mut out, &mut argmax);
    (out, argmax)
}

/// [`max_pool2d`] writing into caller-owned (recycled) buffers: `out` is
/// redrawn from the pool at the output shape and `argmax` is resized in
/// place, so a steady-state caller reuses both across invocations.
///
/// # Panics
///
/// Panics if the input is not rank 4 or the window does not fit.
pub fn max_pool2d_into(input: &Tensor, spec: &PoolSpec, out: &mut Tensor, argmax: &mut Vec<usize>) {
    opcount::count_pool();
    let (n, c, h, w) = input.dims4();
    let oh = spec.out_size(h);
    let ow = spec.out_size(w);
    let out_dims = [n, c, oh, ow];
    if out.dims() != out_dims {
        // `replace` (not `take`) — constructing a `Tensor::default()`
        // placeholder would itself heap-allocate a shape vec every call.
        std::mem::replace(out, Tensor::from_pool(&out_dims)).into_pool();
    }
    argmax.resize(n * c * oh * ow, 0);
    for bn in 0..n {
        for ch in 0..c {
            let arg_base = (bn * c + ch) * oh * ow;
            kernels::max_pool_fmap(
                input.fmap(bn, ch),
                w,
                oh,
                ow,
                spec.kernel,
                spec.stride,
                out.fmap_mut(bn, ch),
                &mut argmax[arg_base..arg_base + oh * ow],
            );
        }
    }
}

/// Gradient of [`max_pool2d`]: routes each output gradient to the input
/// position that produced the maximum.
///
/// # Panics
///
/// Panics if shapes are inconsistent with the forward pass.
pub fn max_pool2d_backward(grad_out: &Tensor, argmax: &[usize], input_dims: &[usize]) -> Tensor {
    let (n, c, oh, ow) = grad_out.dims4();
    assert_eq!(argmax.len(), n * c * oh * ow, "argmax length mismatch");
    let mut grad_input = Tensor::from_pool_zeroed(input_dims);
    for bn in 0..n {
        for ch in 0..c {
            let g = grad_out.fmap(bn, ch);
            let arg_base = (bn * c + ch) * oh * ow;
            let dst = grad_input.fmap_mut(bn, ch);
            for (i, &gv) in g.iter().enumerate() {
                dst[argmax[arg_base + i]] += gv;
            }
        }
    }
    grad_input
}

/// Average pooling over an `NCHW` tensor.
///
/// # Panics
///
/// Panics if the input is not rank 4 or the window does not fit.
pub fn avg_pool2d(input: &Tensor, spec: &PoolSpec) -> Tensor {
    opcount::count_pool();
    let (n, c, h, w) = input.dims4();
    let oh = spec.out_size(h);
    let ow = spec.out_size(w);
    let norm = 1.0 / (spec.kernel * spec.kernel) as f32;
    let mut out = Tensor::from_pool(&[n, c, oh, ow]);
    for bn in 0..n {
        for ch in 0..c {
            kernels::avg_pool_fmap(
                input.fmap(bn, ch),
                w,
                oh,
                ow,
                spec.kernel,
                spec.stride,
                norm,
                out.fmap_mut(bn, ch),
            );
        }
    }
    out
}

/// Gradient of [`avg_pool2d`]: spreads each output gradient uniformly over
/// its window.
///
/// # Panics
///
/// Panics if shapes are inconsistent with the forward pass.
pub fn avg_pool2d_backward(grad_out: &Tensor, spec: &PoolSpec, input_dims: &[usize]) -> Tensor {
    let (n, c, oh, ow) = grad_out.dims4();
    let w = input_dims[3];
    let norm = 1.0 / (spec.kernel * spec.kernel) as f32;
    let mut grad_input = Tensor::from_pool_zeroed(input_dims);
    for bn in 0..n {
        for ch in 0..c {
            let g = grad_out.fmap(bn, ch);
            let dst = grad_input.fmap_mut(bn, ch);
            for oy in 0..oh {
                for ox in 0..ow {
                    let gv = g[oy * ow + ox] * norm;
                    for ky in 0..spec.kernel {
                        for kx in 0..spec.kernel {
                            dst[(oy * spec.stride + ky) * w + ox * spec.stride + kx] += gv;
                        }
                    }
                }
            }
        }
    }
    grad_input
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_pool_picks_window_maxima() {
        let x = Tensor::from_vec(
            vec![
                1.0, 2.0, 5.0, 6.0, //
                3.0, 4.0, 7.0, 8.0, //
                -1.0, -2.0, 0.0, 0.5, //
                -3.0, -4.0, 0.25, 0.75,
            ],
            &[1, 1, 4, 4],
        );
        let (y, arg) = max_pool2d(&x, &PoolSpec::new(2, 2));
        assert_eq!(y.dims(), &[1, 1, 2, 2]);
        assert_eq!(y.data(), &[4.0, 8.0, -1.0, 0.75]);
        assert_eq!(arg, vec![5, 7, 8, 15]);
    }

    #[test]
    fn max_pool_overlapping_windows() {
        let x = Tensor::from_fn(&[1, 1, 3, 3], |i| i as f32);
        let (y, _) = max_pool2d(&x, &PoolSpec::new(2, 1));
        assert_eq!(y.dims(), &[1, 1, 2, 2]);
        assert_eq!(y.data(), &[4.0, 5.0, 7.0, 8.0]);
    }

    #[test]
    fn max_pool_backward_routes_to_argmax() {
        let x = Tensor::from_vec(vec![1.0, 9.0, 3.0, 4.0], &[1, 1, 2, 2]);
        let (_, arg) = max_pool2d(&x, &PoolSpec::new(2, 2));
        let gout = Tensor::from_vec(vec![2.5], &[1, 1, 1, 1]);
        let gin = max_pool2d_backward(&gout, &arg, &[1, 1, 2, 2]);
        assert_eq!(gin.data(), &[0.0, 2.5, 0.0, 0.0]);
    }

    #[test]
    fn max_pool_backward_accumulates_on_overlap() {
        // Stride-1 pooling of a tensor whose max is shared by all windows.
        let x = Tensor::from_vec(
            vec![0.0, 0.0, 0.0, 0.0, 9.0, 0.0, 0.0, 0.0, 0.0],
            &[1, 1, 3, 3],
        );
        let (_, arg) = max_pool2d(&x, &PoolSpec::new(2, 1));
        let gout = Tensor::ones(&[1, 1, 2, 2]);
        let gin = max_pool2d_backward(&gout, &arg, &[1, 1, 3, 3]);
        // All four windows route their gradient to the center.
        assert_eq!(gin.at(&[0, 0, 1, 1]), 4.0);
        assert_eq!(gin.sum(), 4.0);
    }

    #[test]
    fn avg_pool_averages() {
        let x = Tensor::from_fn(&[1, 1, 2, 2], |i| i as f32);
        let y = avg_pool2d(&x, &PoolSpec::new(2, 2));
        assert_eq!(y.data(), &[1.5]);
    }

    #[test]
    fn avg_pool_backward_is_uniform() {
        let gout = Tensor::from_vec(vec![4.0], &[1, 1, 1, 1]);
        let gin = avg_pool2d_backward(&gout, &PoolSpec::new(2, 2), &[1, 1, 2, 2]);
        assert_eq!(gin.data(), &[1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn avg_pool_numeric_gradient() {
        use crate::rng::SeededRng;
        let mut rng = SeededRng::new(5);
        let x = Tensor::rand_normal(&[1, 2, 4, 4], 0.0, 1.0, &mut rng);
        let spec = PoolSpec::new(2, 2);
        let y = avg_pool2d(&x, &spec);
        let gout = Tensor::ones(y.dims());
        let gin = avg_pool2d_backward(&gout, &spec, x.dims());
        let eps = 1e-2f32;
        for &i in &[0usize, 9, 21, 31] {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let num = (avg_pool2d(&xp, &spec).sum() - avg_pool2d(&xm, &spec).sum()) / (2.0 * eps);
            assert!((num - gin.data()[i]).abs() < 1e-3);
        }
    }

    #[test]
    #[should_panic(expected = "larger than input")]
    fn pool_rejects_oversized_window() {
        max_pool2d(&Tensor::zeros(&[1, 1, 2, 2]), &PoolSpec::new(3, 1));
    }
}
