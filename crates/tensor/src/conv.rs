//! 2-D convolution (im2col + matmul) and its gradients.
//!
//! Supports stride, symmetric zero padding, and grouped convolution (which
//! also covers depthwise convolution when `groups == in_channels`). These are
//! the only convolution variants the model zoo needs.

use crate::linalg::{matmul_into, transpose_into};
use crate::pack::{matmul_packed_a, Act, BnFoldView, Epilogue, GatherPlan, PackedA};
use crate::parallel;
use crate::tensor::Tensor;

/// Threshold (in multiply–accumulate operations) above which [`conv2d`]
/// parallelizes across batch elements instead of inside the per-group
/// matmul. Matches the matmul threshold so small problems stay serial.
const PARALLEL_BATCH_MACS: usize = 1 << 20;

/// Geometry of a convolution: stride, padding, groups.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvSpec {
    /// Step between filter applications (same in both spatial dims).
    pub stride: usize,
    /// Symmetric zero padding (same on all four sides).
    pub padding: usize,
    /// Number of filter groups; `in_channels` and `out_channels` must both be
    /// divisible by it.
    pub groups: usize,
}

impl ConvSpec {
    /// A stride-1, unpadded, ungrouped convolution.
    pub fn new() -> Self {
        Self {
            stride: 1,
            padding: 0,
            groups: 1,
        }
    }

    /// Sets the stride.
    pub fn stride(mut self, stride: usize) -> Self {
        self.stride = stride;
        self
    }

    /// Sets the padding.
    pub fn padding(mut self, padding: usize) -> Self {
        self.padding = padding;
        self
    }

    /// Sets the group count.
    pub fn groups(mut self, groups: usize) -> Self {
        self.groups = groups;
        self
    }

    /// Output spatial size for an input extent `in_size` and kernel `k`.
    ///
    /// # Panics
    ///
    /// Panics if the kernel (with padding) does not fit in the input.
    pub fn out_size(&self, in_size: usize, k: usize) -> usize {
        self.checked_out_size(in_size, k)
            .unwrap_or_else(|| panic!("kernel {k} larger than padded input (in {in_size})"))
    }

    /// Non-panicking [`ConvSpec::out_size`]: `None` when the kernel (with
    /// padding) does not fit in the input. Shape validators use this to turn
    /// geometry mismatches into typed errors instead of panics.
    pub fn checked_out_size(&self, in_size: usize, k: usize) -> Option<usize> {
        let padded = in_size + 2 * self.padding;
        if padded < k || k == 0 {
            return None;
        }
        Some((padded - k) / self.stride + 1)
    }
}

impl Default for ConvSpec {
    fn default() -> Self {
        Self::new()
    }
}

/// Gradients produced by [`conv2d_backward`].
#[derive(Debug, Clone)]
pub struct Conv2dGrads {
    /// Gradient w.r.t. the input, same shape as the forward input.
    pub input: Tensor,
    /// Gradient w.r.t. the weights, same shape as the weight tensor.
    pub weight: Tensor,
    /// Gradient w.r.t. the bias, shape `[out_channels]`.
    pub bias: Tensor,
}

/// Lowers one batch element's group slice into an im2col matrix of shape
/// `[cg*kh*kw, oh*ow]`, written into the caller's scratch buffer. The buffer
/// may be dirty from a previous call: the stride-1 path writes every element
/// (zeros included) exactly once, and the strided path zero-fills first.
#[allow(clippy::too_many_arguments)]
fn im2col_into(
    input: &Tensor,
    n: usize,
    c_start: usize,
    cg: usize,
    kh: usize,
    kw: usize,
    spec: &ConvSpec,
    oh: usize,
    ow: usize,
    cols: &mut [f32],
) {
    let (_, _, h, w) = input.dims4();
    assert_eq!(cols.len(), cg * kh * kw * oh * ow, "im2col scratch size");
    if spec.stride != 1 {
        cols.fill(0.0);
    }
    let ow_stride = oh * ow;
    for c in 0..cg {
        let fm = input.fmap(n, c_start + c);
        for ky in 0..kh {
            for kx in 0..kw {
                let row = ((c * kh + ky) * kw + kx) * ow_stride;
                for oy in 0..oh {
                    let iy = (oy * spec.stride + ky) as isize - spec.padding as isize;
                    if spec.stride == 1 {
                        // Stride 1: `ix = ox + kx - padding` walks the input
                        // row contiguously, so each destination row is two
                        // zero borders around one copied span, written in one
                        // pass — no gather, no whole-buffer pre-fill. Narrow
                        // rows use an element loop: a dynamic-length memcpy
                        // call costs more than the handful of moves it does.
                        let dst = &mut cols[row + oy * ow..row + (oy + 1) * ow];
                        if iy < 0 || iy >= h as isize {
                            dst.fill(0.0);
                            continue;
                        }
                        let iy = iy as usize;
                        let src = &fm[iy * w..(iy + 1) * w];
                        if ow < 16 {
                            for (ox, d) in dst.iter_mut().enumerate() {
                                let ix = (ox + kx) as isize - spec.padding as isize;
                                *d = if ix >= 0 && ix < w as isize {
                                    src[ix as usize]
                                } else {
                                    0.0
                                };
                            }
                            continue;
                        }
                        let ox0 = spec.padding.saturating_sub(kx);
                        let ox1 = ow.min((w + spec.padding).saturating_sub(kx));
                        dst[..ox0.min(ow)].fill(0.0);
                        if ox0 < ox1 {
                            let ix0 = ox0 + kx - spec.padding;
                            dst[ox0..ox1].copy_from_slice(&src[ix0..ix0 + (ox1 - ox0)]);
                        }
                        dst[ox1.max(ox0).min(ow)..].fill(0.0);
                        continue;
                    }
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    let iy = iy as usize;
                    for ox in 0..ow {
                        let ix = (ox * spec.stride + kx) as isize - spec.padding as isize;
                        if ix < 0 || ix >= w as isize {
                            continue;
                        }
                        cols[row + oy * ow + ox] = fm[iy * w + ix as usize];
                    }
                }
            }
        }
    }
}

/// Scatters an im2col-shaped gradient matrix back onto the input gradient
/// (inverse of [`im2col`], accumulating where patches overlap).
#[allow(clippy::too_many_arguments)]
fn col2im(
    cols: &[f32],
    grad_input: &mut Tensor,
    n: usize,
    c_start: usize,
    cg: usize,
    kh: usize,
    kw: usize,
    spec: &ConvSpec,
    oh: usize,
    ow: usize,
) {
    let (_, _, h, w) = grad_input.dims4();
    let data = cols;
    let ow_stride = oh * ow;
    for c in 0..cg {
        let fm = grad_input.fmap_mut(n, c_start + c);
        for ky in 0..kh {
            for kx in 0..kw {
                let row = ((c * kh + ky) * kw + kx) * ow_stride;
                for oy in 0..oh {
                    let iy = (oy * spec.stride + ky) as isize - spec.padding as isize;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    let iy = iy as usize;
                    for ox in 0..ow {
                        let ix = (ox * spec.stride + kx) as isize - spec.padding as isize;
                        if ix < 0 || ix >= w as isize {
                            continue;
                        }
                        fm[iy * w + ix as usize] += data[row + oy * ow + ox];
                    }
                }
            }
        }
    }
}

fn check_conv_args(input: &Tensor, weight: &Tensor, bias: &Tensor, spec: &ConvSpec) {
    let (_, c, _, _) = input.dims4();
    let (oc, wc, _, _) = weight.dims4();
    assert!(spec.groups > 0, "groups must be positive");
    assert!(spec.stride > 0, "stride must be positive");
    assert_eq!(
        c % spec.groups,
        0,
        "in_channels {c} not divisible by groups {}",
        spec.groups
    );
    assert_eq!(
        oc % spec.groups,
        0,
        "out_channels {oc} not divisible by groups {}",
        spec.groups
    );
    assert_eq!(
        wc,
        c / spec.groups,
        "weight expects {} input channels per group, input provides {}",
        wc,
        c / spec.groups
    );
    assert_eq!(
        bias.len(),
        oc,
        "bias length {} != out_channels {oc}",
        bias.len()
    );
}

/// 2-D convolution.
///
/// - `input`: `[n, c, h, w]`
/// - `weight`: `[oc, c/groups, kh, kw]`
/// - `bias`: `[oc]`
///
/// Returns `[n, oc, oh, ow]` with `oh/ow` given by [`ConvSpec::out_size`].
///
/// # Panics
///
/// Panics if shapes or the spec are inconsistent (see [`ConvSpec`]).
///
/// # Example
///
/// ```
/// use rustfi_tensor::{conv2d, ConvSpec, Tensor};
///
/// let x = Tensor::ones(&[1, 1, 3, 3]);
/// let w = Tensor::ones(&[1, 1, 3, 3]);
/// let b = Tensor::zeros(&[1]);
/// let y = conv2d(&x, &w, &b, &ConvSpec::new());
/// assert_eq!(y.dims(), &[1, 1, 1, 1]);
/// assert_eq!(y.at(&[0, 0, 0, 0]), 9.0);
/// ```
pub fn conv2d(input: &Tensor, weight: &Tensor, bias: &Tensor, spec: &ConvSpec) -> Tensor {
    crate::opcount::count_conv2d();
    check_conv_args(input, weight, bias, spec);
    let (n, c, h, w) = input.dims4();
    let (oc, _, kh, kw) = weight.dims4();
    let oh = spec.out_size(h, kh);
    let ow = spec.out_size(w, kw);
    let cg = c / spec.groups;
    let og = oc / spec.groups;

    let kcols = cg * kh * kw;
    let ohw = oh * ow;
    // The per-group weight slab is a contiguous run of rows of the
    // [oc, cg*kh*kw] weight matrix, so it can be borrowed directly — no
    // per-batch (or even per-call) slab copy.
    let wdata = weight.data();
    let bdata = bias.data();
    let spec = *spec;

    // Fully overwritten below (`*d = s + b` covers every element), so the
    // buffer can come from the recycling pool with stale contents.
    let mut out = Tensor::from_pool(&[n, oc, oh, ow]);
    let batch_stride = oc * ohw;

    // One batch element's worth of work, with caller-owned im2col/product
    // scratch reused across every (batch, group) iteration. Per-sample GEMMs
    // beat one batch-wide GEMM here: each sample's `[kcols, ohw]` im2col
    // panel stays cache-resident for its whole k sweep, where a merged
    // `[kcols, n*ohw]` panel would stream from memory once per row block.
    // The inner matmul stays serial when the caller is already fanned out
    // across batches.
    let run_batch = |bn: usize,
                     out_bn: &mut [f32],
                     cols: &mut [f32],
                     prod: &mut [f32],
                     parallel_matmul: bool| {
        for g in 0..spec.groups {
            im2col_into(input, bn, g * cg, cg, kh, kw, &spec, oh, ow, cols);
            let wslab = &wdata[g * og * kcols..(g + 1) * og * kcols];
            matmul_into(wslab, cols, prod, og, kcols, ohw, parallel_matmul);
            for o in 0..og {
                let b = bdata[g * og + o];
                let dst = &mut out_bn[(g * og + o) * ohw..(g * og + o + 1) * ohw];
                for (d, &s) in dst.iter_mut().zip(&prod[o * ohw..(o + 1) * ohw]) {
                    *d = s + b;
                }
            }
        }
    };

    let total_macs = n * oc * ohw * kcols;
    if n > 1 && total_macs >= PARALLEL_BATCH_MACS {
        // Batch elements are independent, so fan them across workers; each
        // worker reuses one scratch pair for its whole run of batches.
        parallel::for_each_chunk_mut(out.data_mut(), batch_stride, |start, items, slab| {
            with_conv_scratch(kcols * ohw, og * ohw, |cols, prod| {
                for i in 0..items {
                    let out_bn = &mut slab[i * batch_stride..(i + 1) * batch_stride];
                    run_batch(start + i, out_bn, cols, prod, false);
                }
            });
        });
    } else {
        let out_data = out.data_mut();
        with_conv_scratch(kcols * ohw, og * ohw, |cols, prod| {
            for bn in 0..n {
                let out_bn = &mut out_data[bn * batch_stride..(bn + 1) * batch_stride];
                run_batch(bn, out_bn, cols, prod, true);
            }
        });
    }
    out
}

/// Compiled im2col plan: a [`GatherPlan`] lowering one batch element's
/// group slice (`[cg, h, w]`, contiguous in NCHW) into the
/// `[cg*kh*kw, oh*ow]` im2col matrix that [`conv2d_planned`] feeds its
/// packed GEMM.
///
/// The map depends only on the convolution geometry and the input spatial
/// shape — not on the group index or batch element — so one plan serves
/// every `(batch, group)` lowering of a layer. Values are bit-identical to
/// the on-the-fly `im2col_into` lowering: both read the same source element
/// (or zero) for every destination slot; only the index arithmetic moves
/// from the forward pass to plan-build time.
#[derive(Debug, Clone)]
pub struct Im2colPlan {
    cg: usize,
    h: usize,
    w: usize,
    map: GatherPlan,
}

impl Im2colPlan {
    /// Builds the plan for a `[cg, h, w]` group slice under `kernel` and
    /// `spec`.
    pub fn build(cg: usize, h: usize, w: usize, kernel: (usize, usize), spec: &ConvSpec) -> Self {
        let (kh, kw) = kernel;
        let oh = spec.out_size(h, kh);
        let ow = spec.out_size(w, kw);
        let ohw = oh * ow;
        let mut idx = vec![GatherPlan::PAD; cg * kh * kw * ohw];
        for c in 0..cg {
            for ky in 0..kh {
                for kx in 0..kw {
                    let row = ((c * kh + ky) * kw + kx) * ohw;
                    for oy in 0..oh {
                        let iy = (oy * spec.stride + ky) as isize - spec.padding as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        for ox in 0..ow {
                            let ix = (ox * spec.stride + kx) as isize - spec.padding as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            idx[row + oy * ow + ox] =
                                ((c * h + iy as usize) * w + ix as usize) as u32;
                        }
                    }
                }
            }
        }
        Self {
            cg,
            h,
            w,
            map: GatherPlan::new(cg * h * w, idx),
        }
    }

    /// Whether the plan was built for this group-slice shape. Layers key
    /// their cached plan on this to rebuild lazily when the input spatial
    /// shape changes between forwards.
    pub fn matches(&self, cg: usize, h: usize, w: usize) -> bool {
        self.cg == cg && self.h == h && self.w == w
    }
}

/// 2-D convolution through a compiled plan: pre-packed per-group weight
/// panels, a precomputed [`Im2colPlan`] gather in place of per-element
/// im2col index arithmetic, and a fused epilogue (bias, optional folded
/// batch-norm, optional activation) applied in the GEMM write-back.
///
/// Produces bit-identical results to [`conv2d`] followed by the standalone
/// batch-norm/activation kernels: the packed GEMM preserves per-element
/// `kk`-increasing accumulation, and the epilogue replicates the serial
/// per-element op order (see [`crate::pack`]). Unlike [`conv2d`] there is no
/// intermediate product buffer — the epilogue writes each output element
/// exactly once, directly into the output tensor.
///
/// - `packs`: one [`PackedA`] per group, each packing the group's
///   `[oc/groups, (c/groups)*kh*kw]` weight slab
/// - `kernel`: `(kh, kw)` of the packed filters
/// - `plan`: the gather plan for this input's group-slice shape
///
/// Inside a [`parallel::wide_scope`] (the campaign's golden pass) the
/// per-sample GEMMs fan their row panels across the idle worker fleet.
///
/// # Panics
///
/// Panics if shapes, the spec, the packed panels, and the gather plan are
/// inconsistent.
#[allow(clippy::too_many_arguments)]
pub fn conv2d_planned(
    input: &Tensor,
    packs: &[PackedA],
    kernel: (usize, usize),
    plan: &Im2colPlan,
    bias: &Tensor,
    spec: &ConvSpec,
    bn: Option<BnFoldView<'_>>,
    act: Act,
) -> Tensor {
    crate::opcount::count_conv2d();
    let (n, c, h, w) = input.dims4();
    let (kh, kw) = kernel;
    assert_eq!(packs.len(), spec.groups, "one packed panel set per group");
    let cg = c / spec.groups;
    let kcols = cg * kh * kw;
    let og = packs[0].rows();
    for p in packs {
        assert_eq!(p.rows(), og, "group panel row mismatch");
        assert_eq!(p.k(), kcols, "group panel k mismatch");
    }
    let oc = og * spec.groups;
    let oh = spec.out_size(h, kh);
    let ow = spec.out_size(w, kw);
    let ohw = oh * ow;
    assert!(plan.matches(cg, h, w), "gather plan shape mismatch");
    assert_eq!(plan.map.len(), kcols * ohw, "gather plan size mismatch");
    let bdata = bias.data();
    assert_eq!(bdata.len(), oc, "bias length != out_channels");
    if let Some(f) = &bn {
        assert_eq!(f.mean.len(), oc, "bn fold length != out_channels");
    }
    let chw = c * h * w;
    let ghw = cg * h * w;
    let in_data = input.data();

    // Epilogue writes every element exactly once, so pool-stale contents are
    // fine.
    let mut out = Tensor::from_pool(&[n, oc, oh, ow]);
    let batch_stride = oc * ohw;

    let run_batch = |bn_idx: usize, out_bn: &mut [f32], cols: &mut [f32], inner_parallel: bool| {
        for (g, pack) in packs.iter().enumerate() {
            plan.map
                .gather(&in_data[bn_idx * chw + g * ghw..][..ghw], cols);
            let ep = Epilogue::PerRow {
                bias: bdata,
                bn,
                act,
                row0: g * og,
            };
            let out_g = &mut out_bn[g * og * ohw..(g + 1) * og * ohw];
            matmul_packed_a(pack, cols, out_g, ohw, &ep, inner_parallel);
        }
    };

    let total_macs = n * oc * ohw * kcols;
    if !parallel::wide_mode() && n > 1 && total_macs >= PARALLEL_BATCH_MACS {
        parallel::for_each_chunk_mut(out.data_mut(), batch_stride, |start, items, slab| {
            with_conv_scratch(kcols * ohw, 0, |cols, _| {
                for i in 0..items {
                    let out_bn = &mut slab[i * batch_stride..(i + 1) * batch_stride];
                    run_batch(start + i, out_bn, cols, false);
                }
            });
        });
    } else {
        let out_data = out.data_mut();
        with_conv_scratch(kcols * ohw, 0, |cols, _| {
            for bn_idx in 0..n {
                let out_bn = &mut out_data[bn_idx * batch_stride..(bn_idx + 1) * batch_stride];
                run_batch(bn_idx, out_bn, cols, true);
            }
        });
    }
    out
}

/// Runs `f` with this thread's reusable im2col/product scratch, sized to at
/// least `cols_len`/`prod_len`. Reuse skips a malloc + memset per [`conv2d`]
/// call, which dominates small convolutions; stale contents are harmless
/// because [`im2col_into`] writes (or zero-fills) every element it exposes
/// and the product buffer is fully overwritten by `matmul_into`.
fn with_conv_scratch(cols_len: usize, prod_len: usize, f: impl FnOnce(&mut [f32], &mut [f32])) {
    use std::cell::RefCell;
    thread_local! {
        static SCRATCH: RefCell<(Vec<f32>, Vec<f32>)> = const { RefCell::new((Vec::new(), Vec::new())) };
    }
    SCRATCH.with(|cell| {
        let mut guard = cell.borrow_mut();
        let (cols, prod) = &mut *guard;
        if cols.len() < cols_len {
            cols.resize(cols_len, 0.0);
        }
        if prod.len() < prod_len {
            prod.resize(prod_len, 0.0);
        }
        f(&mut cols[..cols_len], &mut prod[..prod_len]);
    });
}

/// Gradients of [`conv2d`] given the upstream gradient `grad_out`.
///
/// # Panics
///
/// Panics if shapes are inconsistent with the forward pass.
pub fn conv2d_backward(
    input: &Tensor,
    weight: &Tensor,
    grad_out: &Tensor,
    spec: &ConvSpec,
) -> Conv2dGrads {
    let (n, c, h, w) = input.dims4();
    let (oc, _, kh, kw) = weight.dims4();
    let (gn, goc, oh, ow) = grad_out.dims4();
    assert_eq!(gn, n, "grad batch {gn} != input batch {n}");
    assert_eq!(goc, oc, "grad channels {goc} != out_channels {oc}");
    assert_eq!(oh, spec.out_size(h, kh), "grad height mismatch");
    assert_eq!(ow, spec.out_size(w, kw), "grad width mismatch");
    let cg = c / spec.groups;
    let og = oc / spec.groups;

    let mut grad_input = Tensor::zeros(&[n, c, h, w]);
    let mut grad_weight = Tensor::zeros(weight.dims());
    let mut grad_bias = Tensor::zeros(&[oc]);

    let kcols = cg * kh * kw;
    let ohw = oh * ow;
    // One scratch set reused across every (group, batch) iteration: the old
    // code re-ran im2col *and* allocated a fresh transpose per pair. The
    // weight transpose depends only on the group, so the loop is reordered
    // group-outer and `wt` built once per group. Per-element accumulation
    // into grad_weight/grad_bias still runs in increasing batch order, so
    // results are unchanged.
    let mut cols = vec![0.0f32; kcols * ohw];
    let mut cols_t = vec![0.0f32; kcols * ohw];
    let mut gmat = vec![0.0f32; og * ohw];
    let mut gw = vec![0.0f32; og * kcols];
    let mut gcols = vec![0.0f32; kcols * ohw];
    let mut wt = vec![0.0f32; kcols * og];

    for g in 0..spec.groups {
        let wstart = g * og * kcols;
        transpose_into(
            &weight.data()[wstart..wstart + og * kcols],
            &mut wt,
            og,
            kcols,
        );
        for bn in 0..n {
            // grad_out slab for this group: [og, oh*ow]
            for o in 0..og {
                gmat[o * ohw..(o + 1) * ohw].copy_from_slice(grad_out.fmap(bn, g * og + o));
            }

            // Bias gradient: sum over spatial positions.
            for o in 0..og {
                let s: f32 = gmat[o * ohw..(o + 1) * ohw].iter().sum();
                grad_bias.data_mut()[g * og + o] += s;
            }

            // Weight gradient: gmat [og, ohw] x cols^T [ohw, cg*kh*kw].
            im2col_into(input, bn, g * cg, cg, kh, kw, spec, oh, ow, &mut cols);
            transpose_into(&cols, &mut cols_t, kcols, ohw);
            matmul_into(&gmat, &cols_t, &mut gw, og, ohw, kcols, true);
            for (dst, src) in grad_weight.data_mut()[wstart..wstart + og * kcols]
                .iter_mut()
                .zip(&gw)
            {
                *dst += src;
            }

            // Input gradient: W^T [cg*kh*kw, og] x gmat [og, ohw] -> cols grad.
            matmul_into(&wt, &gmat, &mut gcols, kcols, og, ohw, true);
            col2im(
                &gcols,
                &mut grad_input,
                bn,
                g * cg,
                cg,
                kh,
                kw,
                spec,
                oh,
                ow,
            );
        }
    }

    Conv2dGrads {
        input: grad_input,
        weight: grad_weight,
        bias: grad_bias,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SeededRng;

    /// Direct (naive) convolution used as a reference implementation.
    fn conv2d_naive(input: &Tensor, weight: &Tensor, bias: &Tensor, spec: &ConvSpec) -> Tensor {
        let (n, c, h, w) = input.dims4();
        let (oc, _, kh, kw) = weight.dims4();
        let oh = spec.out_size(h, kh);
        let ow = spec.out_size(w, kw);
        let cg = c / spec.groups;
        let og = oc / spec.groups;
        let mut out = Tensor::zeros(&[n, oc, oh, ow]);
        for bn in 0..n {
            for o in 0..oc {
                let g = o / og;
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = bias.data()[o];
                        for ci in 0..cg {
                            for ky in 0..kh {
                                for kx in 0..kw {
                                    let iy =
                                        (oy * spec.stride + ky) as isize - spec.padding as isize;
                                    let ix =
                                        (ox * spec.stride + kx) as isize - spec.padding as isize;
                                    if iy < 0 || ix < 0 || iy >= h as isize || ix >= w as isize {
                                        continue;
                                    }
                                    acc += input.at(&[bn, g * cg + ci, iy as usize, ix as usize])
                                        * weight.at(&[o, ci, ky, kx]);
                                }
                            }
                        }
                        out.set(&[bn, o, oy, ox], acc);
                    }
                }
            }
        }
        out
    }

    fn assert_close(a: &Tensor, b: &Tensor, tol: f32) {
        assert_eq!(a.dims(), b.dims());
        for (x, y) in a.data().iter().zip(b.data()) {
            assert!((x - y).abs() <= tol, "{x} vs {y}");
        }
    }

    #[test]
    fn out_size_formula() {
        let s = ConvSpec::new().stride(2).padding(1);
        assert_eq!(s.out_size(8, 3), 4);
        assert_eq!(ConvSpec::new().out_size(5, 5), 1);
    }

    #[test]
    #[should_panic(expected = "larger than padded input")]
    fn out_size_rejects_oversized_kernel() {
        ConvSpec::new().out_size(2, 5);
    }

    #[test]
    fn conv_matches_naive_basic() {
        let mut rng = SeededRng::new(10);
        let x = Tensor::rand_normal(&[2, 3, 8, 8], 0.0, 1.0, &mut rng);
        let w = Tensor::rand_normal(&[4, 3, 3, 3], 0.0, 0.5, &mut rng);
        let b = Tensor::rand_normal(&[4], 0.0, 0.1, &mut rng);
        let spec = ConvSpec::new().padding(1);
        assert_close(
            &conv2d(&x, &w, &b, &spec),
            &conv2d_naive(&x, &w, &b, &spec),
            1e-4,
        );
    }

    #[test]
    fn conv_matches_naive_strided() {
        let mut rng = SeededRng::new(11);
        let x = Tensor::rand_normal(&[1, 2, 9, 9], 0.0, 1.0, &mut rng);
        let w = Tensor::rand_normal(&[3, 2, 3, 3], 0.0, 0.5, &mut rng);
        let b = Tensor::zeros(&[3]);
        let spec = ConvSpec::new().stride(2).padding(1);
        assert_close(
            &conv2d(&x, &w, &b, &spec),
            &conv2d_naive(&x, &w, &b, &spec),
            1e-4,
        );
    }

    #[test]
    fn conv_matches_naive_grouped() {
        let mut rng = SeededRng::new(12);
        let x = Tensor::rand_normal(&[2, 4, 6, 6], 0.0, 1.0, &mut rng);
        let w = Tensor::rand_normal(&[6, 2, 3, 3], 0.0, 0.5, &mut rng);
        let b = Tensor::rand_normal(&[6], 0.0, 0.1, &mut rng);
        let spec = ConvSpec::new().padding(1).groups(2);
        assert_close(
            &conv2d(&x, &w, &b, &spec),
            &conv2d_naive(&x, &w, &b, &spec),
            1e-4,
        );
    }

    #[test]
    fn conv_depthwise() {
        let mut rng = SeededRng::new(13);
        let x = Tensor::rand_normal(&[1, 4, 5, 5], 0.0, 1.0, &mut rng);
        let w = Tensor::rand_normal(&[4, 1, 3, 3], 0.0, 0.5, &mut rng);
        let b = Tensor::zeros(&[4]);
        let spec = ConvSpec::new().padding(1).groups(4);
        assert_close(
            &conv2d(&x, &w, &b, &spec),
            &conv2d_naive(&x, &w, &b, &spec),
            1e-4,
        );
    }

    #[test]
    fn conv_1x1_is_channel_mix() {
        // A 1x1 conv with identity-like weights moves channels around exactly.
        let x = Tensor::from_fn(&[1, 2, 2, 2], |i| i as f32);
        let w = Tensor::from_vec(vec![0.0, 1.0, 1.0, 0.0], &[2, 2, 1, 1]); // swap channels
        let b = Tensor::zeros(&[2]);
        let y = conv2d(&x, &w, &b, &ConvSpec::new());
        assert_eq!(y.fmap(0, 0), x.fmap(0, 1));
        assert_eq!(y.fmap(0, 1), x.fmap(0, 0));
    }

    #[test]
    #[should_panic(expected = "not divisible by groups")]
    fn conv_rejects_bad_groups() {
        let x = Tensor::zeros(&[1, 3, 4, 4]);
        let w = Tensor::zeros(&[2, 1, 1, 1]);
        let b = Tensor::zeros(&[2]);
        conv2d(&x, &w, &b, &ConvSpec::new().groups(2));
    }

    fn pack_groups(w: &Tensor, groups: usize) -> Vec<PackedA> {
        let (oc, cg, kh, kw) = w.dims4();
        let og = oc / groups;
        let kcols = cg * kh * kw;
        (0..groups)
            .map(|g| PackedA::pack(&w.data()[g * og * kcols..(g + 1) * og * kcols], og, kcols))
            .collect()
    }

    #[test]
    fn planned_conv_is_bit_identical_to_conv2d() {
        let mut rng = SeededRng::new(31);
        for &(n, c, oc, hw, groups, stride, padding) in &[
            (2usize, 3usize, 4usize, 8usize, 1usize, 1usize, 1usize),
            (1, 4, 6, 6, 2, 1, 1),
            (3, 2, 3, 9, 1, 2, 1),
        ] {
            let spec = ConvSpec::new()
                .stride(stride)
                .padding(padding)
                .groups(groups);
            let x = Tensor::rand_normal(&[n, c, hw, hw], 0.0, 1.0, &mut rng);
            let w = Tensor::rand_normal(&[oc, c / groups, 3, 3], 0.0, 0.5, &mut rng);
            let b = Tensor::rand_normal(&[oc], 0.0, 0.1, &mut rng);
            let plain = conv2d(&x, &w, &b, &spec);
            let packs = pack_groups(&w, groups);
            let plan = Im2colPlan::build(c / groups, hw, hw, (3, 3), &spec);
            let planned = conv2d_planned(&x, &packs, (3, 3), &plan, &b, &spec, None, Act::None);
            assert_eq!(planned.dims(), plain.dims());
            for (p, q) in planned.data().iter().zip(plain.data()) {
                assert_eq!(p.to_bits(), q.to_bits());
            }
        }
    }

    #[test]
    fn planned_conv_fused_relu_matches_serial_chain() {
        let mut rng = SeededRng::new(32);
        let spec = ConvSpec::new().padding(1);
        let x = Tensor::rand_normal(&[2, 3, 7, 7], 0.0, 1.0, &mut rng);
        let w = Tensor::rand_normal(&[5, 3, 3, 3], 0.0, 0.5, &mut rng);
        let b = Tensor::rand_normal(&[5], 0.0, 0.1, &mut rng);
        let mut serial = conv2d(&x, &w, &b, &spec);
        for v in serial.data_mut() {
            *v = v.max(0.0);
        }
        let packs = pack_groups(&w, 1);
        let plan = Im2colPlan::build(3, 7, 7, (3, 3), &spec);
        let fused = conv2d_planned(&x, &packs, (3, 3), &plan, &b, &spec, None, Act::Relu);
        for (p, q) in fused.data().iter().zip(serial.data()) {
            assert_eq!(p.to_bits(), q.to_bits());
        }
        // The wide (golden-pass) path fans GEMM rows but must keep the bits.
        let wide = {
            let _g = parallel::wide_scope();
            conv2d_planned(&x, &packs, (3, 3), &plan, &b, &spec, None, Act::Relu)
        };
        assert_eq!(wide.data(), fused.data());
    }

    /// Numeric gradient check of the analytic backward pass.
    #[test]
    fn backward_matches_numeric_gradient() {
        let mut rng = SeededRng::new(20);
        let x = Tensor::rand_normal(&[1, 2, 5, 5], 0.0, 1.0, &mut rng);
        let w = Tensor::rand_normal(&[3, 2, 3, 3], 0.0, 0.5, &mut rng);
        let b = Tensor::rand_normal(&[3], 0.0, 0.1, &mut rng);
        let spec = ConvSpec::new().padding(1).stride(2);

        // Loss = sum(conv(x)), so upstream gradient is all-ones.
        let y = conv2d(&x, &w, &b, &spec);
        let gout = Tensor::ones(y.dims());
        let grads = conv2d_backward(&x, &w, &gout, &spec);

        let eps = 1e-2f32;
        let loss = |x: &Tensor, w: &Tensor, b: &Tensor| conv2d(x, w, b, &spec).sum();

        // Check a scattering of input positions.
        for &i in &[0usize, 7, 13, 24, 49] {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let num = (loss(&xp, &w, &b) - loss(&xm, &w, &b)) / (2.0 * eps);
            let ana = grads.input.data()[i];
            assert!((num - ana).abs() < 1e-2, "input grad {i}: {num} vs {ana}");
        }
        // Check a scattering of weight positions.
        for &i in &[0usize, 5, 17, 35, 53] {
            let mut wp = w.clone();
            wp.data_mut()[i] += eps;
            let mut wm = w.clone();
            wm.data_mut()[i] -= eps;
            let num = (loss(&x, &wp, &b) - loss(&x, &wm, &b)) / (2.0 * eps);
            let ana = grads.weight.data()[i];
            assert!((num - ana).abs() < 1e-2, "weight grad {i}: {num} vs {ana}");
        }
        // Bias gradient is the spatial size of the output per channel.
        let (_, _, oh, ow) = y.dims4();
        for v in grads.bias.data() {
            assert!((v - (oh * ow) as f32).abs() < 1e-3);
        }
    }

    #[test]
    fn backward_grouped_matches_numeric() {
        let mut rng = SeededRng::new(21);
        let x = Tensor::rand_normal(&[1, 4, 4, 4], 0.0, 1.0, &mut rng);
        let w = Tensor::rand_normal(&[4, 2, 3, 3], 0.0, 0.5, &mut rng);
        let b = Tensor::zeros(&[4]);
        let spec = ConvSpec::new().padding(1).groups(2);
        let y = conv2d(&x, &w, &b, &spec);
        let gout = Tensor::ones(y.dims());
        let grads = conv2d_backward(&x, &w, &gout, &spec);
        let eps = 1e-2f32;
        let loss = |x: &Tensor, w: &Tensor| conv2d(x, w, &b, &spec).sum();
        for &i in &[0usize, 11, 30, 63] {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let num = (loss(&xp, &w) - loss(&xm, &w)) / (2.0 * eps);
            assert!((num - grads.input.data()[i]).abs() < 1e-2);
        }
        for &i in &[0usize, 20, 40, 71] {
            let mut wp = w.clone();
            wp.data_mut()[i] += eps;
            let mut wm = w.clone();
            wm.data_mut()[i] -= eps;
            let num = (loss(&x, &wp) - loss(&x, &wm)) / (2.0 * eps);
            assert!((num - grads.weight.data()[i]).abs() < 1e-2);
        }
    }
}
