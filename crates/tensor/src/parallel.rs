//! Scoped-thread data-parallel helpers built on [`std::thread::scope`].
//!
//! The RustFI stack uses plain data parallelism in two places: large matrix
//! multiplies inside convolution, and fault-injection campaigns that fan
//! independent trials across worker threads. Both are expressed with the two
//! helpers here, so thread management lives in exactly one module.
//!
//! The [`shield`] submodule is the campaign-resilience primitive: it runs a
//! closure under [`std::panic::catch_unwind`] while suppressing the global
//! panic hook's stderr spew for that thread, so a deliberately isolated
//! panicking trial neither kills the worker nor floods the terminal.

use std::cell::Cell;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};

thread_local! {
    static WIDE: Cell<bool> = const { Cell::new(false) };
}

/// RAII guard returned by [`wide_scope`]; restores the previous mode on drop.
#[must_use = "wide mode ends when the guard drops"]
pub struct WideGuard {
    prev: bool,
}

impl Drop for WideGuard {
    fn drop(&mut self) {
        WIDE.with(|w| w.set(self.prev));
    }
}

/// Marks this thread as running a *wide* phase: a stretch where the rest of
/// the worker fleet is idle (the campaign's golden/calibration pass), so
/// kernels should fan even sub-threshold work across all cores. The flag is
/// thread-local — threads spawned inside the scope do not inherit it, which
/// is exactly right: their work was already fanned out by the parent.
pub fn wide_scope() -> WideGuard {
    WideGuard {
        prev: WIDE.with(|w| w.replace(true)),
    }
}

/// Whether this thread is inside a [`wide_scope`].
pub fn wide_mode() -> bool {
    WIDE.with(Cell::get)
}

/// Number of worker threads to use (cached; at least 1).
pub fn worker_count() -> usize {
    static CACHED: AtomicUsize = AtomicUsize::new(0);
    let cached = CACHED.load(Ordering::Relaxed);
    if cached != 0 {
        return cached;
    }
    let n = std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1);
    CACHED.store(n, Ordering::Relaxed);
    n
}

/// Splits `out` into contiguous chunks of `rows_per_item * item_width`
/// elements and runs `f(first_item_index, items_in_chunk, chunk)` on worker
/// threads.
///
/// `out.len()` must be a multiple of `item_width`. Items are the unit of
/// distribution; each worker receives a contiguous run of items.
///
/// # Panics
///
/// Panics if `item_width == 0` or `out.len()` is not a multiple of it, or if
/// a worker panics.
pub fn for_each_chunk_mut<F>(out: &mut [f32], item_width: usize, f: F)
where
    F: Fn(usize, usize, &mut [f32]) + Sync,
{
    assert!(item_width > 0, "item_width must be positive");
    assert_eq!(
        out.len() % item_width,
        0,
        "output length {} is not a multiple of item width {}",
        out.len(),
        item_width
    );
    let items = out.len() / item_width;
    if items == 0 {
        return;
    }
    let workers = worker_count().min(items);
    if workers <= 1 {
        f(0, items, out);
        return;
    }
    let per = items.div_ceil(workers);
    std::thread::scope(|scope| {
        let mut rest = out;
        let mut start = 0;
        while start < items {
            let take = per.min(items - start);
            let (head, tail) = rest.split_at_mut(take * item_width);
            rest = tail;
            let fref = &f;
            let item_start = start;
            scope.spawn(move || fref(item_start, take, head));
            start += take;
        }
    });
}

/// Like [`for_each_chunk_mut`], but rounds each chunk's item count up to a
/// multiple of `align`, so every chunk *starts* on an `align`-item boundary.
/// Tiled kernels (packed GEMM panels) use this so workers always begin on a
/// panel edge.
///
/// # Panics
///
/// Panics if `item_width == 0` or `align == 0`, if `out.len()` is not a
/// multiple of `item_width`, or if a worker panics.
pub fn for_each_chunk_mut_aligned<F>(out: &mut [f32], item_width: usize, align: usize, f: F)
where
    F: Fn(usize, usize, &mut [f32]) + Sync,
{
    assert!(item_width > 0, "item_width must be positive");
    assert!(align > 0, "align must be positive");
    assert_eq!(
        out.len() % item_width,
        0,
        "output length {} is not a multiple of item width {}",
        out.len(),
        item_width
    );
    let items = out.len() / item_width;
    if items == 0 {
        return;
    }
    let workers = worker_count().min(items.div_ceil(align));
    if workers <= 1 {
        f(0, items, out);
        return;
    }
    let per = items.div_ceil(workers).div_ceil(align) * align;
    std::thread::scope(|scope| {
        let mut rest = out;
        let mut start = 0;
        while start < items {
            let take = per.min(items - start);
            let (head, tail) = rest.split_at_mut(take * item_width);
            rest = tail;
            let fref = &f;
            let item_start = start;
            scope.spawn(move || fref(item_start, take, head));
            start += take;
        }
    });
}

/// Runs `f(i)` for every `i in 0..n` across worker threads and collects the
/// results in order.
///
/// Work is distributed by index striding through an atomic counter, so uneven
/// per-item cost still balances. Results are returned in input order.
///
/// # Panics
///
/// Panics if a worker panics.
pub fn map_indexed<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let workers = worker_count().min(n);
    if workers <= 1 {
        return (0..n).map(f).collect();
    }
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    let counter = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let fref = &f;
                let cref = &counter;
                scope.spawn(move || {
                    let mut local: Vec<(usize, T)> = Vec::new();
                    loop {
                        let i = cref.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, fref(i)));
                    }
                    local
                })
            })
            .collect();
        for handle in handles {
            for (i, v) in handle.join().expect("parallel worker panicked") {
                slots[i] = Some(v);
            }
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("worker skipped an index"))
        .collect()
}

/// Panic containment for fault-injection trials.
///
/// A fault-injection campaign deliberately drives models into pathological
/// states; a trial that panics (an index assert tripped by an extreme
/// perturbation, an interrupt raised by a guard hook) must be *recorded*,
/// not allowed to kill the worker thread — and must not spray a backtrace
/// for every isolated trial.
pub mod shield {
    use std::any::Any;
    use std::cell::Cell;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::Once;

    thread_local! {
        static SHIELDED: Cell<bool> = const { Cell::new(false) };
    }

    /// Installs (once, process-wide) a panic hook that stays silent on
    /// threads currently inside [`run_quietly`] and delegates to the
    /// previously installed hook everywhere else.
    fn install_quiet_hook() {
        static INSTALL: Once = Once::new();
        INSTALL.call_once(|| {
            let prev = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                if !SHIELDED.with(Cell::get) {
                    prev(info);
                }
            }));
        });
    }

    /// Runs `f`, catching any panic it raises. While `f` runs, panics on
    /// this thread do not reach the panic hook's default stderr output;
    /// other threads are unaffected. Nested calls are safe.
    pub fn run_quietly<R>(f: impl FnOnce() -> R) -> Result<R, Box<dyn Any + Send>> {
        install_quiet_hook();
        struct Restore(bool);
        impl Drop for Restore {
            fn drop(&mut self) {
                SHIELDED.with(|s| s.set(self.0));
            }
        }
        let _restore = Restore(SHIELDED.with(|s| s.replace(true)));
        catch_unwind(AssertUnwindSafe(f))
    }

    /// Best-effort human-readable message from a caught panic payload.
    pub fn payload_message(payload: &(dyn Any + Send)) -> String {
        if let Some(s) = payload.downcast_ref::<&'static str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            String::from("non-string panic payload")
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn catches_and_describes_panics() {
            let caught = run_quietly(|| panic!("boom {}", 42)).unwrap_err();
            assert_eq!(payload_message(caught.as_ref()), "boom 42");
            let caught = run_quietly(|| std::panic::panic_any(7u32)).unwrap_err();
            assert_eq!(payload_message(caught.as_ref()), "non-string panic payload");
        }

        #[test]
        fn passes_values_through_on_success() {
            assert_eq!(run_quietly(|| 1 + 1).unwrap(), 2);
        }

        #[test]
        fn shield_flag_restores_after_nesting() {
            let outer = run_quietly(|| {
                let inner = run_quietly(|| panic!("inner"));
                assert!(inner.is_err());
                // Still shielded after the nested call returns.
                SHIELDED.with(Cell::get)
            });
            assert!(outer.unwrap());
            assert!(
                !SHIELDED.with(Cell::get),
                "flag cleared after outermost call"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_count_is_positive() {
        assert!(worker_count() >= 1);
    }

    #[test]
    fn chunked_fill_covers_everything() {
        let mut out = vec![0.0f32; 12 * 5];
        for_each_chunk_mut(&mut out, 5, |start, items, slab| {
            for i in 0..items {
                for j in 0..5 {
                    slab[i * 5 + j] = (start + i) as f32;
                }
            }
        });
        for item in 0..12 {
            for j in 0..5 {
                assert_eq!(out[item * 5 + j], item as f32);
            }
        }
    }

    #[test]
    fn chunked_handles_empty() {
        let mut out: Vec<f32> = Vec::new();
        for_each_chunk_mut(&mut out, 4, |_, _, _| panic!("should not run"));
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn chunked_rejects_misaligned_width() {
        let mut out = vec![0.0f32; 7];
        for_each_chunk_mut(&mut out, 2, |_, _, _| {});
    }

    #[test]
    fn map_indexed_preserves_order() {
        let v = map_indexed(100, |i| i * i);
        assert_eq!(v.len(), 100);
        for (i, x) in v.iter().enumerate() {
            assert_eq!(*x, i * i);
        }
    }

    #[test]
    fn map_indexed_empty() {
        let v: Vec<usize> = map_indexed(0, |i| i);
        assert!(v.is_empty());
    }

    #[test]
    fn map_indexed_single() {
        assert_eq!(map_indexed(1, |i| i + 41), vec![41]);
    }
}
