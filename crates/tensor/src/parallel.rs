//! Scoped-thread data-parallel helpers built on `crossbeam::scope`.
//!
//! The RustFI stack uses plain data parallelism in two places: large matrix
//! multiplies inside convolution, and fault-injection campaigns that fan
//! independent trials across worker threads. Both are expressed with the two
//! helpers here, so thread management lives in exactly one module.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of worker threads to use (cached; at least 1).
pub fn worker_count() -> usize {
    static CACHED: AtomicUsize = AtomicUsize::new(0);
    let cached = CACHED.load(Ordering::Relaxed);
    if cached != 0 {
        return cached;
    }
    let n = std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1);
    CACHED.store(n, Ordering::Relaxed);
    n
}

/// Splits `out` into contiguous chunks of `rows_per_item * item_width`
/// elements and runs `f(first_item_index, items_in_chunk, chunk)` on worker
/// threads.
///
/// `out.len()` must be a multiple of `item_width`. Items are the unit of
/// distribution; each worker receives a contiguous run of items.
///
/// # Panics
///
/// Panics if `item_width == 0` or `out.len()` is not a multiple of it, or if
/// a worker panics.
pub fn for_each_chunk_mut<F>(out: &mut [f32], item_width: usize, f: F)
where
    F: Fn(usize, usize, &mut [f32]) + Sync,
{
    assert!(item_width > 0, "item_width must be positive");
    assert_eq!(
        out.len() % item_width,
        0,
        "output length {} is not a multiple of item width {}",
        out.len(),
        item_width
    );
    let items = out.len() / item_width;
    if items == 0 {
        return;
    }
    let workers = worker_count().min(items);
    if workers <= 1 {
        f(0, items, out);
        return;
    }
    let per = items.div_ceil(workers);
    crossbeam::scope(|scope| {
        let mut rest = out;
        let mut start = 0;
        while start < items {
            let take = per.min(items - start);
            let (head, tail) = rest.split_at_mut(take * item_width);
            rest = tail;
            let fref = &f;
            let item_start = start;
            scope.spawn(move |_| fref(item_start, take, head));
            start += take;
        }
    })
    .expect("parallel worker panicked");
}

/// Runs `f(i)` for every `i in 0..n` across worker threads and collects the
/// results in order.
///
/// Work is distributed by index striding through an atomic counter, so uneven
/// per-item cost still balances. Results are returned in input order.
///
/// # Panics
///
/// Panics if a worker panics.
pub fn map_indexed<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let workers = worker_count().min(n);
    if workers <= 1 {
        return (0..n).map(f).collect();
    }
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    let counter = AtomicUsize::new(0);
    crossbeam::scope(|scope| {
        let results: Vec<_> = (0..workers)
            .map(|_| {
                let fref = &f;
                let cref = &counter;
                scope.spawn(move |_| {
                    let mut local: Vec<(usize, T)> = Vec::new();
                    loop {
                        let i = cref.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, fref(i)));
                    }
                    local
                })
            })
            .collect();
        for handle in results {
            for (i, v) in handle.join().expect("parallel worker panicked") {
                slots[i] = Some(v);
            }
        }
    })
    .expect("parallel scope failed");
    slots
        .into_iter()
        .map(|s| s.expect("worker skipped an index"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_count_is_positive() {
        assert!(worker_count() >= 1);
    }

    #[test]
    fn chunked_fill_covers_everything() {
        let mut out = vec![0.0f32; 12 * 5];
        for_each_chunk_mut(&mut out, 5, |start, items, slab| {
            for i in 0..items {
                for j in 0..5 {
                    slab[i * 5 + j] = (start + i) as f32;
                }
            }
        });
        for item in 0..12 {
            for j in 0..5 {
                assert_eq!(out[item * 5 + j], item as f32);
            }
        }
    }

    #[test]
    fn chunked_handles_empty() {
        let mut out: Vec<f32> = Vec::new();
        for_each_chunk_mut(&mut out, 4, |_, _, _| panic!("should not run"));
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn chunked_rejects_misaligned_width() {
        let mut out = vec![0.0f32; 7];
        for_each_chunk_mut(&mut out, 2, |_, _, _| {});
    }

    #[test]
    fn map_indexed_preserves_order() {
        let v = map_indexed(100, |i| i * i);
        assert_eq!(v.len(), 100);
        for (i, x) in v.iter().enumerate() {
            assert_eq!(*x, i * i);
        }
    }

    #[test]
    fn map_indexed_empty() {
        let v: Vec<usize> = map_indexed(0, |i| i);
        assert!(v.is_empty());
    }

    #[test]
    fn map_indexed_single() {
        assert_eq!(map_indexed(1, |i| i + 41), vec![41]);
    }
}
