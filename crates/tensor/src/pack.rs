//! Pre-packed weight panels and fused GEMM epilogues — the tensor-level half
//! of the compiled forward plan.
//!
//! A fault-injection campaign runs the same weights through the same GEMMs
//! millions of times. Packing rearranges each weight matrix **once** into the
//! exact panel layout the register-tiled microkernels walk ([`PackedA`] for
//! matrices on the left of the product, [`PackedB`] for the right,
//! [`PackedI16`] for pre-widened INT8 operands), so the per-trial kernel
//! streams one contiguous buffer instead of gathering strided rows — and the
//! per-forward `W^T` transpose of the linear layer disappears entirely.
//!
//! **Bit-identity.** The packed f32 kernels perform, for every output
//! element, the identical sequence of multiplies and adds as the unpacked
//! [`matmul_into`](crate::matmul_into) kernel: accumulation is strictly
//! `kk`-increasing into a single accumulator, Rust never contracts
//! `a * b + c` into a fused multiply-add, and packing only changes *where*
//! an operand is read from, never *when* it enters the accumulation. The
//! INT8 kernels are exact integer arithmetic, identical under any order.
//!
//! **Fused epilogues.** The [`Epilogue`] applied in the write-back loop
//! replicates the per-element op order of the serial layer chain — bias add
//! (`acc + b`), then folded batch-norm (`(v - mean) * inv_std` followed by
//! `g * n + b`), then activation (`v.max(0.0)` / leaky) — with no
//! intervening pass, so fused and unfused forwards produce the same bits
//! while the memory-bound bias/BN/ReLU passes over the output disappear.
//!
//! Packing is a pure function of the weight bytes: repacking after a
//! weight-fault undo reproduces the blessed panel bytes exactly.

use crate::linalg::{MR, NR};
use crate::parallel;

/// Activation applied in a fused GEMM write-back, replicating the exact
/// per-element ops of the standalone kernels in [`kernels`](crate::kernels).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Act {
    /// Raw affine output.
    None,
    /// `v.max(0.0)` — same `f32::max` as [`relu_mask`](crate::kernels::relu_mask).
    Relu,
    /// `if v <= 0 { slope * v } else { v }` — same branch as
    /// [`leaky_relu_mask`](crate::kernels::leaky_relu_mask).
    LeakyRelu(f32),
}

impl Act {
    /// Applies the activation to one value.
    #[inline(always)]
    pub fn apply(self, v: f32) -> f32 {
        match self {
            Act::None => v,
            Act::Relu => v.max(0.0),
            Act::LeakyRelu(slope) => {
                let neg = v <= 0.0;
                if neg {
                    slope * v
                } else {
                    v
                }
            }
        }
    }
}

/// Folded inference-mode batch-norm constants, one entry per output row
/// (= output channel). `inv_std` must be precomputed as
/// `1.0 / (var + eps).sqrt()` — the exact expression the standalone layer
/// uses — so the fused chain reproduces its bits.
#[derive(Debug, Clone, Copy)]
pub struct BnFoldView<'a> {
    /// Running mean per channel.
    pub mean: &'a [f32],
    /// `1 / sqrt(running_var + eps)` per channel.
    pub inv_std: &'a [f32],
    /// Scale (γ) per channel.
    pub gamma: &'a [f32],
    /// Shift (β) per channel.
    pub beta: &'a [f32],
}

/// What the GEMM write-back loop applies to each accumulated element before
/// storing it. Op order per element matches the serial layer chain exactly:
/// bias, then batch-norm, then activation.
#[derive(Debug, Clone, Copy)]
pub enum Epilogue<'a> {
    /// Store the raw accumulator (bit-identical to the unpacked kernel).
    None,
    /// Per-output-row constants — the convolution layout, where each GEMM
    /// row is one output channel. `row0` offsets the slice lookups for
    /// grouped convolution (group `g` computes global rows `g*og + r`).
    PerRow {
        /// Bias per output row; `v = acc + bias[row]` first, matching the
        /// conv write-back `*d = s + b`.
        bias: &'a [f32],
        /// Folded batch-norm constants, applied after the bias.
        bn: Option<BnFoldView<'a>>,
        /// Activation, applied last.
        act: Act,
        /// Global row index of the kernel's row 0.
        row0: usize,
    },
    /// Per-output-column constants — the linear layout, where each GEMM
    /// column is one output feature. `v = acc + bias[col]` matches
    /// `bias_add_rows`'s `*o += b`.
    PerCol {
        /// Bias per output column.
        bias: &'a [f32],
        /// Activation, applied after the bias.
        act: Act,
    },
}

impl Epilogue<'_> {
    /// Full-tile write-back: takes the accumulator row **by value** so no
    /// reference into the kernel's register tile ever escapes — otherwise
    /// SROA cannot promote the tile out of its stack slot and the hot loop
    /// pays a store per accumulator per `kk` step.
    #[inline(always)]
    fn apply_row(&self, acc: [f32; NR], row: usize, col0: usize, dst: &mut [f32]) {
        match *self {
            Epilogue::None => dst[..NR].copy_from_slice(&acc),
            Epilogue::PerRow {
                bias,
                bn,
                act,
                row0,
            } => {
                let r = row0 + row;
                let b = bias[r];
                match bn {
                    None => {
                        for (d, s) in dst.iter_mut().zip(acc) {
                            *d = act.apply(s + b);
                        }
                    }
                    Some(f) => {
                        let (m, is) = (f.mean[r], f.inv_std[r]);
                        let (g, b2) = (f.gamma[r], f.beta[r]);
                        for (d, s) in dst.iter_mut().zip(acc) {
                            let v = s + b;
                            let n = (v - m) * is;
                            *d = act.apply(g * n + b2);
                        }
                    }
                }
            }
            Epilogue::PerCol { bias, act } => {
                for (j, (d, s)) in dst.iter_mut().zip(acc).enumerate() {
                    *d = act.apply(s + bias[col0 + j]);
                }
            }
        }
    }

    /// Applies the epilogue to one accumulated row segment `acc`, writing
    /// into `dst`. `row` is the kernel-local output row; `col0` the global
    /// column of `acc[0]`. Partial-tile path; the hot full tiles go through
    /// [`Self::apply_row`].
    #[inline(always)]
    fn apply(&self, acc: &[f32], row: usize, col0: usize, dst: &mut [f32]) {
        match *self {
            Epilogue::None => dst[..acc.len()].copy_from_slice(acc),
            Epilogue::PerRow {
                bias,
                bn,
                act,
                row0,
            } => {
                let r = row0 + row;
                let b = bias[r];
                match bn {
                    None => {
                        for (d, &s) in dst.iter_mut().zip(acc) {
                            *d = act.apply(s + b);
                        }
                    }
                    Some(f) => {
                        let (m, is) = (f.mean[r], f.inv_std[r]);
                        let (g, b2) = (f.gamma[r], f.beta[r]);
                        for (d, &s) in dst.iter_mut().zip(acc) {
                            let v = s + b;
                            let n = (v - m) * is;
                            *d = act.apply(g * n + b2);
                        }
                    }
                }
            }
            Epilogue::PerCol { bias, act } => {
                for (j, (d, &s)) in dst.iter_mut().zip(acc).enumerate() {
                    *d = act.apply(s + bias[col0 + j]);
                }
            }
        }
    }
}

/// An `[m, k]` f32 matrix re-tiled for the left operand of the 4×16
/// microkernel: full `MR`-row panels stored `kk`-major (`buf[panel*MR*k +
/// kk*MR + r]`), remainder rows appended row-major. Pure function of the
/// source bytes — repacking identical weights reproduces identical panels.
#[derive(Debug, Clone, PartialEq)]
pub struct PackedA {
    m: usize,
    k: usize,
    buf: Vec<f32>,
}

impl PackedA {
    /// Packs a row-major `[m, k]` matrix.
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != m * k`.
    pub fn pack(a: &[f32], m: usize, k: usize) -> Self {
        let mut p = Self {
            m,
            k,
            buf: vec![0.0; m * k],
        };
        p.fill(a);
        p
    }

    /// Repacks in place from a matrix with the same dimensions, reusing the
    /// panel buffer (no allocation).
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != m * k`.
    pub fn repack(&mut self, a: &[f32]) {
        self.fill(a);
    }

    fn fill(&mut self, a: &[f32]) {
        let (m, k) = (self.m, self.k);
        assert_eq!(a.len(), m * k, "source length != m*k");
        let m_full = m - m % MR;
        for p in 0..m_full / MR {
            let dst = &mut self.buf[p * MR * k..(p + 1) * MR * k];
            for kk in 0..k {
                for r in 0..MR {
                    dst[kk * MR + r] = a[(p * MR + r) * k + kk];
                }
            }
        }
        // Remainder rows stay row-major; the kernel's partial-tile path
        // reads them exactly like the unpacked kernel reads `a` rows.
        self.buf[m_full * k..].copy_from_slice(&a[m_full * k..]);
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.m
    }

    /// Inner (k) dimension.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The raw panel bytes (diagnostics/tests).
    pub fn panel_data(&self) -> &[f32] {
        &self.buf
    }
}

/// A `[k, n]` f32 matrix re-tiled for the right operand: full `NR`-column
/// panels stored `kk`-major (`buf[panel*NR*k + kk*NR + j]`), remainder
/// columns appended as a `kk`-major strip of width `n % NR`.
///
/// [`PackedB::pack_transposed`] builds the panels directly from the natural
/// `[n, k]` weight layout of a linear layer, replacing the per-forward
/// `transpose_into` scratch pass.
#[derive(Debug, Clone, PartialEq)]
pub struct PackedB {
    k: usize,
    n: usize,
    buf: Vec<f32>,
}

impl PackedB {
    /// Packs a row-major `[k, n]` matrix.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != k * n`.
    pub fn pack(b: &[f32], k: usize, n: usize) -> Self {
        let mut p = Self {
            k,
            n,
            buf: vec![0.0; k * n],
        };
        p.fill(|kk, j| b[kk * n + j]);
        p
    }

    /// Packs the transpose of a row-major `[n, k]` matrix (so the product
    /// computes `a · wᵀ` without materializing `wᵀ`).
    ///
    /// # Panics
    ///
    /// Panics if `w.len() != n * k`.
    pub fn pack_transposed(w: &[f32], n: usize, k: usize) -> Self {
        assert_eq!(w.len(), n * k, "source length != n*k");
        let mut p = Self {
            k,
            n,
            buf: vec![0.0; k * n],
        };
        p.fill(|kk, j| w[j * k + kk]);
        p
    }

    /// Repacks in place from the transpose of a same-shaped `[n, k]` matrix,
    /// reusing the panel buffer.
    ///
    /// # Panics
    ///
    /// Panics if `w.len() != n * k`.
    pub fn repack_transposed(&mut self, w: &[f32]) {
        let (k, n) = (self.k, self.n);
        assert_eq!(w.len(), n * k, "source length != n*k");
        self.fill(|kk, j| w[j * k + kk]);
    }

    fn fill(&mut self, src: impl Fn(usize, usize) -> f32) {
        let (k, n) = (self.k, self.n);
        let n_full = n - n % NR;
        for p in 0..n_full / NR {
            let dst = &mut self.buf[p * NR * k..(p + 1) * NR * k];
            for kk in 0..k {
                for j in 0..NR {
                    dst[kk * NR + j] = src(kk, p * NR + j);
                }
            }
        }
        let tw = n - n_full;
        if tw > 0 {
            let dst = &mut self.buf[n_full * k..];
            for kk in 0..k {
                for j in 0..tw {
                    dst[kk * tw + j] = src(kk, n_full + j);
                }
            }
        }
    }

    /// Inner (k) dimension.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.n
    }

    /// The raw panel bytes (diagnostics/tests).
    pub fn panel_data(&self) -> &[f32] {
        &self.buf
    }
}

/// A row-major `[rows, k]` `i8` matrix pre-widened to `i16`, so the AVX2
/// integer GEMM loads 16 lanes directly instead of sign-extending on every
/// pass. Values are identical (`i8 as i16` is exact), and integer
/// accumulation is exact, so widened and unwidened kernels agree bit for
/// bit.
#[derive(Debug, Clone, PartialEq)]
pub struct PackedI16 {
    rows: usize,
    k: usize,
    buf: Vec<i16>,
}

impl PackedI16 {
    /// Widens a row-major `[rows, k]` `i8` matrix.
    ///
    /// # Panics
    ///
    /// Panics if `src.len() != rows * k`.
    pub fn widen(src: &[i8], rows: usize, k: usize) -> Self {
        let mut p = Self {
            rows,
            k,
            buf: vec![0; rows * k],
        };
        p.rewiden(src);
        p
    }

    /// Re-widens in place from a same-shaped source, reusing the buffer.
    ///
    /// # Panics
    ///
    /// Panics if `src.len() != rows * k`.
    pub fn rewiden(&mut self, src: &[i8]) {
        assert_eq!(src.len(), self.rows * self.k, "source length != rows*k");
        for (d, &s) in self.buf.iter_mut().zip(src) {
            *d = s as i16;
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Inner (k) dimension.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The widened words (diagnostics/tests).
    pub fn data(&self) -> &[i16] {
        &self.buf
    }
}

/// Packed-A GEMM with fused epilogue: `pa [m, k] x b [k, n]` into
/// `out [m * n]`. Per-element accumulation order matches
/// [`matmul_into`](crate::matmul_into) exactly; only the epilogue transform
/// differs from a raw store.
///
/// Parallelizes over `MR`-aligned row blocks when `allow_parallel` holds and
/// either the problem crosses the matmul threshold or a
/// [`parallel::wide_scope`] is active (the golden-pass mode, where trial
/// workers are idle and even small GEMMs should fan out).
///
/// # Panics
///
/// Panics if slice lengths disagree with the packed dimensions.
pub fn matmul_packed_a(
    pa: &PackedA,
    b: &[f32],
    out: &mut [f32],
    n: usize,
    ep: &Epilogue<'_>,
    allow_parallel: bool,
) {
    crate::opcount::count_matmul();
    let (m, k) = (pa.m, pa.k);
    assert_eq!(b.len(), k * n, "rhs length != k*n");
    assert_eq!(out.len(), m * n, "out length != m*n");
    let wide = parallel::wide_mode();
    if allow_parallel && m > 1 && (wide || m * n * k >= crate::linalg::PARALLEL_MACS) {
        // Chunks are MR-aligned so every worker starts on a panel boundary.
        parallel::for_each_chunk_mut_aligned(out, n, MR, |row0, rows, slab| {
            packed_a_rows(pa, b, row0..row0 + rows, slab, n, ep);
        });
    } else {
        packed_a_rows(pa, b, 0..m, out, n, ep);
    }
}

/// Packed-B GEMM with fused epilogue: `a [m, k] x pb [k, n]` into
/// `out [m * n]`. Same per-element order as the unpacked kernel.
///
/// In a [`parallel::wide_scope`] a single-row product (the golden pass's
/// batch-1 linear layer) parallelizes over `NR`-aligned column panels;
/// multi-row products split by rows as usual.
///
/// # Panics
///
/// Panics if slice lengths disagree with the packed dimensions.
pub fn matmul_packed_b(
    a: &[f32],
    pb: &PackedB,
    out: &mut [f32],
    m: usize,
    ep: &Epilogue<'_>,
    allow_parallel: bool,
) {
    crate::opcount::count_matmul();
    let (k, n) = (pb.k, pb.n);
    assert_eq!(a.len(), m * k, "lhs length != m*k");
    assert_eq!(out.len(), m * n, "out length != m*n");
    let wide = parallel::wide_mode();
    if allow_parallel && wide && m == 1 && n > NR {
        // One output row: column panels are contiguous in `out`, so they can
        // be handed to workers directly.
        parallel::for_each_chunk_mut_aligned(out, 1, NR, |col0, cols, slab| {
            packed_b_cols(a, pb, 0..1, col0, cols, slab, ep);
        });
    } else if allow_parallel && m > 1 && (wide || m * n * k >= crate::linalg::PARALLEL_MACS) {
        parallel::for_each_chunk_mut(out, n, |row0, rows, slab| {
            packed_b_cols(a, pb, row0..row0 + rows, 0, n, slab, ep);
        });
    } else {
        packed_b_cols(a, pb, 0..m, 0, n, out, ep);
    }
}

/// Dispatch trio for the packed-A row kernel (see `block_rows` in `linalg`).
fn packed_a_rows(
    pa: &PackedA,
    b: &[f32],
    rows: std::ops::Range<usize>,
    out_rows: &mut [f32],
    n: usize,
    ep: &Epilogue<'_>,
) {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: reached only after runtime detection confirms AVX2.
        unsafe { packed_a_rows_avx2(pa, b, rows, out_rows, n, ep) };
        return;
    }
    packed_a_rows_impl(pa, b, rows, out_rows, n, ep);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn packed_a_rows_avx2(
    pa: &PackedA,
    b: &[f32],
    rows: std::ops::Range<usize>,
    out_rows: &mut [f32],
    n: usize,
    ep: &Epilogue<'_>,
) {
    packed_a_rows_impl(pa, b, rows, out_rows, n, ep);
}

#[inline(always)]
fn packed_a_rows_impl(
    pa: &PackedA,
    b: &[f32],
    rows: std::ops::Range<usize>,
    out_rows: &mut [f32],
    n: usize,
    ep: &Epilogue<'_>,
) {
    let (m, k) = (pa.m, pa.k);
    let m_full = m - m % MR;
    let row0 = rows.start;
    debug_assert_eq!(row0 % MR, 0, "packed-A chunks start on panel boundaries");
    let mut i = rows.start;
    while i < rows.end {
        let mr = MR.min(rows.end - i);
        let mut jt = 0;
        while jt < n {
            let jw = NR.min(n - jt);
            if mr == MR && jw == NR && i < m_full {
                let panel = &pa.buf[i * k..(i + MR) * k];
                let mut acc = [[0.0f32; NR]; MR];
                // `chunks_exact` hands the kernel provably-MR-wide segments,
                // keeping the hot loop free of the length checks a manual
                // `panel[kk * MR..]` slice would re-derive every iteration.
                for (kk, a_seg) in panel.chunks_exact(MR).enumerate() {
                    let b_seg: &[f32; NR] = b[kk * n + jt..kk * n + jt + NR]
                        .try_into()
                        .expect("NR-wide");
                    let (v0, v1, v2, v3) = (a_seg[0], a_seg[1], a_seg[2], a_seg[3]);
                    for j in 0..NR {
                        acc[0][j] += v0 * b_seg[j];
                        acc[1][j] += v1 * b_seg[j];
                        acc[2][j] += v2 * b_seg[j];
                        acc[3][j] += v3 * b_seg[j];
                    }
                }
                for (r, acc_row) in acc.into_iter().enumerate() {
                    let base = (i - row0 + r) * n + jt;
                    ep.apply_row(acc_row, i + r, jt, &mut out_rows[base..base + NR]);
                }
            } else {
                // Partial tiles: per-row single accumulator, kk-increasing —
                // the same order as the unpacked kernel's remainder path.
                // Rows inside full panels are gathered back out of the panel
                // layout (stride MR); tail rows are stored row-major.
                for r in 0..mr {
                    let row = i + r;
                    let mut acc = [0.0f32; NR];
                    if row < m_full {
                        let panel = &pa.buf[(row / MR) * MR * k..];
                        let rr = row % MR;
                        for kk in 0..k {
                            let av = panel[kk * MR + rr];
                            let b_seg = &b[kk * n + jt..kk * n + jt + jw];
                            for (o, &bv) in acc.iter_mut().zip(b_seg) {
                                *o += av * bv;
                            }
                        }
                    } else {
                        let a_row = &pa.buf[m_full * k + (row - m_full) * k..][..k];
                        for (kk, &av) in a_row.iter().enumerate() {
                            let b_seg = &b[kk * n + jt..kk * n + jt + jw];
                            for (o, &bv) in acc.iter_mut().zip(b_seg) {
                                *o += av * bv;
                            }
                        }
                    }
                    let base = (row - row0) * n + jt;
                    ep.apply(&acc[..jw], row, jt, &mut out_rows[base..base + jw]);
                }
            }
            jt += jw;
        }
        i += mr;
    }
}

/// Dispatch trio for the packed-B kernel over a row range × column range.
fn packed_b_cols(
    a: &[f32],
    pb: &PackedB,
    rows: std::ops::Range<usize>,
    col0: usize,
    cols: usize,
    out_rows: &mut [f32],
    ep: &Epilogue<'_>,
) {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: reached only after runtime detection confirms AVX2.
        unsafe { packed_b_cols_avx2(a, pb, rows, col0, cols, out_rows, ep) };
        return;
    }
    packed_b_cols_impl(a, pb, rows, col0, cols, out_rows, ep);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
unsafe fn packed_b_cols_avx2(
    a: &[f32],
    pb: &PackedB,
    rows: std::ops::Range<usize>,
    col0: usize,
    cols: usize,
    out_rows: &mut [f32],
    ep: &Epilogue<'_>,
) {
    packed_b_cols_impl(a, pb, rows, col0, cols, out_rows, ep);
}

#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn packed_b_cols_impl(
    a: &[f32],
    pb: &PackedB,
    rows: std::ops::Range<usize>,
    col0: usize,
    cols: usize,
    out_rows: &mut [f32],
    ep: &Epilogue<'_>,
) {
    let (k, n) = (pb.k, pb.n);
    let n_full = n - n % NR;
    let row0 = rows.start;
    debug_assert_eq!(col0 % NR, 0, "packed-B chunks start on panel boundaries");
    let mut i = rows.start;
    while i < rows.end {
        let mr = MR.min(rows.end - i);
        let mut jt = col0;
        while jt < col0 + cols {
            let jw = NR.min(col0 + cols - jt).min(n - jt);
            if mr == MR && jw == NR && jt < n_full {
                let panel = &pb.buf[jt * k..(jt + NR) * k];
                let a0 = &a[i * k..(i + 1) * k];
                let a1 = &a[(i + 1) * k..(i + 2) * k];
                let a2 = &a[(i + 2) * k..(i + 3) * k];
                let a3 = &a[(i + 3) * k..(i + 4) * k];
                let mut acc = [[0.0f32; NR]; MR];
                for (kk, b_seg) in panel.chunks_exact(NR).enumerate() {
                    let (v0, v1, v2, v3) = (a0[kk], a1[kk], a2[kk], a3[kk]);
                    for j in 0..NR {
                        acc[0][j] += v0 * b_seg[j];
                        acc[1][j] += v1 * b_seg[j];
                        acc[2][j] += v2 * b_seg[j];
                        acc[3][j] += v3 * b_seg[j];
                    }
                }
                for (r, acc_row) in acc.into_iter().enumerate() {
                    let base = (i - row0 + r) * cols + (jt - col0);
                    ep.apply_row(acc_row, i + r, jt, &mut out_rows[base..base + NR]);
                }
            } else {
                for r in 0..mr {
                    let mut acc = [0.0f32; NR];
                    let a_row = &a[(i + r) * k..(i + r + 1) * k];
                    for (kk, &av) in a_row.iter().enumerate() {
                        let b_seg = pb.col_segment(kk, jt, jw, n_full);
                        for (o, &bv) in acc.iter_mut().zip(b_seg) {
                            *o += av * bv;
                        }
                    }
                    let base = (i + r - row0) * cols + (jt - col0);
                    ep.apply(&acc[..jw], i + r, jt, &mut out_rows[base..base + jw]);
                }
            }
            jt += jw;
        }
        i += mr;
    }
}

impl PackedB {
    /// The `jw`-wide segment of packed row `kk` starting at global column
    /// `jt` (which must lie entirely within one panel or the tail strip).
    #[inline(always)]
    fn col_segment(&self, kk: usize, jt: usize, jw: usize, n_full: usize) -> &[f32] {
        if jt < n_full {
            let p = jt / NR;
            let off = jt % NR;
            &self.buf[p * NR * self.k + kk * NR + off..][..jw]
        } else {
            let tw = self.n - n_full;
            &self.buf[n_full * self.k + kk * tw + (jt - n_full)..][..jw]
        }
    }
}

/// A precomputed gather map: the compiled plan's replacement for per-element
/// index arithmetic when lowering an activation slice into a GEMM operand
/// (im2col / im2row). Each entry is either a source offset or an
/// out-of-range sentinel standing for a padding zero, so the per-forward
/// lowering collapses to one flat indexed copy — no per-element coordinate
/// math, no edge-case branches.
///
/// The map is a pure function of the convolution geometry and the input
/// spatial shape, so it is built once per campaign (lazily, on the first
/// planned forward that sees the shape) and reused by every trial.
#[derive(Debug, Clone)]
pub struct GatherPlan {
    /// Expected source slice length; gathers assert against it.
    src_len: usize,
    /// One source offset per destination element; any value `>= src_len`
    /// (canonically [`GatherPlan::PAD`]) writes the type's zero instead.
    idx: Vec<u32>,
}

impl GatherPlan {
    /// Sentinel for "this destination element is a padding zero".
    pub const PAD: u32 = u32::MAX;

    /// Wraps a prebuilt index map. `idx` entries `>= src_len` gather a zero.
    ///
    /// # Panics
    ///
    /// Panics if `src_len` overflows `u32` (the map's offset width).
    pub fn new(src_len: usize, idx: Vec<u32>) -> Self {
        assert!(
            u32::try_from(src_len).is_ok(),
            "gather source too large for u32 offsets"
        );
        Self { src_len, idx }
    }

    /// Number of destination elements the map produces.
    pub fn len(&self) -> usize {
        self.idx.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.idx.is_empty()
    }

    /// Executes the gather: `dst[i] = src[idx[i]]`, or `T::default()` where
    /// the entry is out of range (padding). The single `src.get` bound per
    /// element is the entire inner loop — padding needs no special case
    /// because the sentinel is simply an out-of-range offset.
    ///
    /// # Panics
    ///
    /// Panics if `src` or `dst` disagree with the map's dimensions.
    pub fn gather<T: Copy + Default>(&self, src: &[T], dst: &mut [T]) {
        assert_eq!(src.len(), self.src_len, "gather source length");
        assert_eq!(dst.len(), self.idx.len(), "gather destination length");
        for (d, &ix) in dst.iter_mut().zip(&self.idx) {
            *d = src.get(ix as usize).copied().unwrap_or_default();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linalg::{matmul_into, transpose_into};
    use crate::rng::SeededRng;
    use crate::tensor::Tensor;

    fn assert_bits_eq(a: &[f32], b: &[f32], what: &str) {
        assert_eq!(a.len(), b.len(), "{what}: length");
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "{what}[{i}]: {x} vs {y}");
        }
    }

    #[test]
    fn gather_plan_copies_and_zero_fills() {
        let plan = GatherPlan::new(4, vec![2, 0, GatherPlan::PAD, 3, 7]);
        let src = [10.0f32, 11.0, 12.0, 13.0];
        let mut dst = [f32::NAN; 5];
        plan.gather(&src, &mut dst);
        // Both the canonical PAD sentinel and any other out-of-range offset
        // produce the zero element.
        assert_eq!(dst, [12.0, 10.0, 0.0, 13.0, 0.0]);
        let qsrc = [1i8, 2, 3, 4];
        let mut qdst = [9i8; 5];
        plan.gather(&qsrc, &mut qdst);
        assert_eq!(qdst, [3, 1, 0, 4, 0]);
    }

    #[test]
    fn packed_a_matches_unpacked_bit_for_bit() {
        let mut rng = SeededRng::new(41);
        // Full tiles, remainder rows, partial column tiles.
        for &(m, k, n) in &[
            (4usize, 16usize, 16usize),
            (8, 27, 256),
            (5, 9, 3),
            (1, 37, 130),
            (13, 64, 33),
        ] {
            let a = Tensor::rand_normal(&[m, k], 0.0, 1.0, &mut rng);
            let b = Tensor::rand_normal(&[k, n], 0.0, 1.0, &mut rng);
            let mut plain = vec![0.0f32; m * n];
            matmul_into(a.data(), b.data(), &mut plain, m, k, n, false);
            let pa = PackedA::pack(a.data(), m, k);
            let mut packed = vec![9.0f32; m * n];
            matmul_packed_a(&pa, b.data(), &mut packed, n, &Epilogue::None, false);
            assert_bits_eq(&packed, &plain, &format!("packed-A {m}x{k}x{n}"));
        }
    }

    #[test]
    fn packed_b_matches_unpacked_bit_for_bit() {
        let mut rng = SeededRng::new(43);
        for &(m, k, n) in &[
            (4usize, 16usize, 16usize),
            (16, 32, 10),
            (1, 37, 130),
            (7, 9, 48),
            (3, 64, 33),
        ] {
            let a = Tensor::rand_normal(&[m, k], 0.0, 1.0, &mut rng);
            let b = Tensor::rand_normal(&[k, n], 0.0, 1.0, &mut rng);
            let mut plain = vec![0.0f32; m * n];
            matmul_into(a.data(), b.data(), &mut plain, m, k, n, false);
            let pb = PackedB::pack(b.data(), k, n);
            let mut packed = vec![9.0f32; m * n];
            matmul_packed_b(a.data(), &pb, &mut packed, m, &Epilogue::None, false);
            assert_bits_eq(&packed, &plain, &format!("packed-B {m}x{k}x{n}"));
        }
    }

    #[test]
    fn pack_transposed_skips_the_transpose_scratch() {
        let mut rng = SeededRng::new(47);
        let (n, k) = (19usize, 23usize);
        let w = Tensor::rand_normal(&[n, k], 0.0, 1.0, &mut rng);
        let mut wt = vec![0.0f32; n * k];
        transpose_into(w.data(), &mut wt, n, k);
        let direct = PackedB::pack_transposed(w.data(), n, k);
        let via_transpose = PackedB::pack(&wt, k, n);
        assert_eq!(direct, via_transpose);
    }

    #[test]
    fn repack_reproduces_blessed_panel_bytes() {
        let mut rng = SeededRng::new(53);
        let (m, k) = (10usize, 27usize);
        let w = Tensor::rand_normal(&[m, k], 0.0, 1.0, &mut rng);
        let blessed = PackedA::pack(w.data(), m, k);
        let mut live = blessed.clone();
        // Fault, repack, undo, repack — the final panels must be the
        // blessed bytes exactly.
        let mut faulty = w.clone();
        faulty.data_mut()[5] = f32::NEG_INFINITY;
        live.repack(faulty.data());
        assert_ne!(live, blessed);
        live.repack(w.data());
        assert_eq!(live.panel_data(), blessed.panel_data());
    }

    #[test]
    fn epilogue_matches_serial_chain_bit_for_bit() {
        let mut rng = SeededRng::new(59);
        let (m, k, n) = (6usize, 21usize, 40usize);
        let a = Tensor::rand_normal(&[m, k], 0.0, 1.0, &mut rng);
        let b = Tensor::rand_normal(&[k, n], 0.0, 1.0, &mut rng);
        let bias: Vec<f32> = (0..m).map(|i| (i as f32 - 2.5) * 0.3).collect();
        let mean: Vec<f32> = (0..m).map(|i| (i as f32) * 0.11).collect();
        let var: Vec<f32> = (0..m).map(|i| 0.5 + i as f32 * 0.07).collect();
        let gamma: Vec<f32> = (0..m).map(|i| 1.0 - i as f32 * 0.05).collect();
        let beta: Vec<f32> = (0..m).map(|i| i as f32 * 0.02 - 0.1).collect();
        let eps = 1e-5f32;
        let inv_std: Vec<f32> = var.iter().map(|&v| 1.0 / (v + eps).sqrt()).collect();

        // Serial chain: raw GEMM, then bias, then BN, then leaky ReLU — the
        // exact per-element expressions of the standalone layers.
        let mut serial = vec![0.0f32; m * n];
        matmul_into(a.data(), b.data(), &mut serial, m, k, n, false);
        for r in 0..m {
            for v in &mut serial[r * n..(r + 1) * n] {
                let x = *v + bias[r];
                let nrm = (x - mean[r]) * inv_std[r];
                let y = gamma[r] * nrm + beta[r];
                let neg = y <= 0.0;
                *v = if neg { 0.01 * y } else { y };
            }
        }

        let pa = PackedA::pack(a.data(), m, k);
        let ep = Epilogue::PerRow {
            bias: &bias,
            bn: Some(BnFoldView {
                mean: &mean,
                inv_std: &inv_std,
                gamma: &gamma,
                beta: &beta,
            }),
            act: Act::LeakyRelu(0.01),
            row0: 0,
        };
        let mut fused = vec![0.0f32; m * n];
        matmul_packed_a(&pa, b.data(), &mut fused, n, &ep, false);
        assert_bits_eq(&fused, &serial, "fused epilogue");
    }

    #[test]
    fn per_col_epilogue_matches_bias_rows_then_relu() {
        let mut rng = SeededRng::new(61);
        let (m, k, n) = (3usize, 12usize, 21usize);
        let a = Tensor::rand_normal(&[m, k], 0.0, 1.0, &mut rng);
        let w = Tensor::rand_normal(&[n, k], 0.0, 1.0, &mut rng);
        let bias: Vec<f32> = (0..n).map(|j| (j as f32 - 10.0) * 0.13).collect();

        let mut wt = vec![0.0f32; n * k];
        transpose_into(w.data(), &mut wt, n, k);
        let mut serial = vec![0.0f32; m * n];
        matmul_into(a.data(), &wt, &mut serial, m, k, n, false);
        crate::kernels::bias_add_rows(&mut serial, &bias);
        for v in &mut serial {
            *v = v.max(0.0);
        }

        let pb = PackedB::pack_transposed(w.data(), n, k);
        let ep = Epilogue::PerCol {
            bias: &bias,
            act: Act::Relu,
        };
        let mut fused = vec![0.0f32; m * n];
        matmul_packed_b(a.data(), &pb, &mut fused, m, &ep, false);
        assert_bits_eq(&fused, &serial, "per-col epilogue");
    }

    #[test]
    fn wide_scope_parallel_paths_are_bit_identical() {
        let mut rng = SeededRng::new(67);
        let (m, k, n) = (37usize, 29usize, 130usize);
        let a = Tensor::rand_normal(&[m, k], 0.0, 1.0, &mut rng);
        let b = Tensor::rand_normal(&[k, n], 0.0, 1.0, &mut rng);
        let pa = PackedA::pack(a.data(), m, k);
        let mut serial = vec![0.0f32; m * n];
        matmul_packed_a(&pa, b.data(), &mut serial, n, &Epilogue::None, false);
        let mut wide = vec![0.0f32; m * n];
        {
            let _w = parallel::wide_scope();
            matmul_packed_a(&pa, b.data(), &mut wide, n, &Epilogue::None, true);
        }
        assert_bits_eq(&wide, &serial, "wide packed-A");

        // Batch-1 packed-B fans over column panels in wide mode.
        let x = Tensor::rand_normal(&[1, k], 0.0, 1.0, &mut rng);
        let pb = PackedB::pack(b.data(), k, n);
        let mut srow = vec![0.0f32; n];
        matmul_packed_b(x.data(), &pb, &mut srow, 1, &Epilogue::None, false);
        let mut wrow = vec![0.0f32; n];
        {
            let _w = parallel::wide_scope();
            matmul_packed_b(x.data(), &pb, &mut wrow, 1, &Epilogue::None, true);
        }
        assert_bits_eq(&wrow, &srow, "wide packed-B row");
    }

    #[test]
    fn widened_panels_preserve_values() {
        let src: Vec<i8> = (0..60).map(|i| (i * 7 % 255 - 127) as i8).collect();
        let mut p = PackedI16::widen(&src, 5, 12);
        for (w, &s) in p.data().iter().zip(&src) {
            assert_eq!(*w, s as i16);
        }
        let flipped: Vec<i8> = src.iter().map(|&v| v.wrapping_neg()).collect();
        p.rewiden(&flipped);
        assert_eq!(p.data()[3], flipped[3] as i16);
    }
}
