//! Symmetric INT8 quantization primitives and integer microkernels.
//!
//! This module is the single home of the INT8 rounding rule for the whole
//! workspace: both the f32 *simulation* of quantization in `rustfi-quant`
//! (fake-quantize round trips) and the *real* stored-`i8` inference path
//! ([`QTensor`](crate::QTensor), [`conv2d_q`](crate::conv2d_q)) funnel every
//! float→int conversion through [`quantize_one`], so the two paths produce
//! bit-identical quantized words by construction.
//!
//! The scheme is symmetric quantization with the zero point fixed at 0 and
//! the representable range `[-127, 127]` (`-128` is left unused, as common
//! INT8 inference kernels do):
//!
//! ```text
//! scale = max|x| / 127        q = clamp(round(x / scale), -127, 127)
//! ```
//!
//! **Rounding semantics** (see [`quantize_one`]): `f32::round` — ties round
//! half *away from zero* (2.5 → 3, -2.5 → -3). NaN quantizes to 0 through
//! Rust's saturating float→int cast, and ±∞ saturates to ±127, so faulty
//! activations stay representable.
//!
//! The slice kernels use the same runtime-dispatch trio as the elementwise
//! tail (`simd_kernel!`), and [`matmul_i8_nt`] follows the `linalg`
//! `block_rows` pattern with a hand-vectorized AVX2 body: `i8` operands are
//! widened to `i16` lanes and accumulated with `pmaddwd` into `i32`. Integer
//! arithmetic is exact, so the AVX2 and portable kernels are bit-identical
//! regardless of accumulation order.

use crate::kernels::simd_kernel;
use crate::pack::PackedI16;

/// Largest representable quantized magnitude.
pub const QMAX: i32 = 127;

/// Minimum scale used to avoid division by zero for all-zero tensors.
const MIN_SCALE: f32 = 1e-12;

/// Quantization scale that maps `max_abs` to [`QMAX`].
///
/// A non-finite `max_abs` (which arises when quantizing activations that an
/// upstream fault has driven to ±∞) saturates to the largest finite range,
/// mirroring hardware that clamps at the representable maximum.
///
/// # Panics
///
/// Panics if `max_abs` is negative or NaN.
pub fn scale_for_max_abs(max_abs: f32) -> f32 {
    assert!(
        !max_abs.is_nan() && max_abs >= 0.0,
        "invalid max_abs {max_abs}"
    );
    if max_abs.is_infinite() {
        return f32::MAX / QMAX as f32;
    }
    (max_abs / QMAX as f32).max(MIN_SCALE)
}

/// Largest finite absolute value in `values`, ignoring non-finite elements
/// (possible under upstream fault injection); 0 for an all-non-finite slice.
pub fn slice_max_abs_finite(values: &[f32]) -> f32 {
    values
        .iter()
        .filter(|v| v.is_finite())
        .fold(0.0f32, |m, &x| m.max(x.abs()))
}

/// The one float→INT8 conversion in the workspace. `f32::round` ties round
/// half away from zero; the clamp runs in f32 so ±∞ saturates to ±127 and
/// NaN falls through to the saturating cast, which maps it to 0.
#[inline(always)]
fn quantize_raw(x: f32, scale: f32) -> i8 {
    (x / scale).round().clamp(-(QMAX as f32), QMAX as f32) as i8
}

/// Quantizes a value to INT8 with the given scale. See the module docs for
/// the rounding semantics.
///
/// # Panics
///
/// Panics if `scale` is not positive.
#[inline]
pub fn quantize_one(x: f32, scale: f32) -> i8 {
    assert!(scale > 0.0, "scale must be positive, got {scale}");
    quantize_raw(x, scale)
}

/// Dequantizes an INT8 value.
#[inline]
pub fn dequantize_one(q: i8, scale: f32) -> f32 {
    q as f32 * scale
}

simd_kernel! {
    /// Quantizes a slice: `dst[i] = quantize_one(src[i], scale)`.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch or a non-positive scale.
    quantize_slice / quantize_slice_avx2 / quantize_slice_impl,
    (src: &[f32], scale: f32, dst: &mut [i8]) {
        assert_eq!(src.len(), dst.len());
        assert!(scale > 0.0, "scale must be positive, got {scale}");
        for (d, &x) in dst.iter_mut().zip(src) {
            *d = quantize_raw(x, scale);
        }
    }
}

simd_kernel! {
    /// Dequantizes a slice: `dst[i] = src[i] as f32 * scale`.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    dequantize_slice / dequantize_slice_avx2 / dequantize_slice_impl,
    (src: &[i8], scale: f32, dst: &mut [f32]) {
        assert_eq!(src.len(), dst.len());
        for (d, &q) in dst.iter_mut().zip(src) {
            *d = q as f32 * scale;
        }
    }
}

simd_kernel! {
    /// Requantizes stored words onto a new grid:
    /// `dst[i] = quantize(dequantize(src[i], s_in), s_out)`.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch or a non-positive output scale.
    requantize_slice / requantize_slice_avx2 / requantize_slice_impl,
    (src: &[i8], s_in: f32, s_out: f32, dst: &mut [i8]) {
        assert_eq!(src.len(), dst.len());
        assert!(s_out > 0.0, "scale must be positive, got {s_out}");
        for (d, &q) in dst.iter_mut().zip(src) {
            *d = quantize_raw(q as f32 * s_in, s_out);
        }
    }
}

simd_kernel! {
    /// Dequantizes one integer GEMM output row with a scalar combined scale:
    /// `out[i] = acc[i] as f32 * scale + bias`.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    dequant_bias_row / dequant_bias_row_avx2 / dequant_bias_row_impl,
    (acc: &[i32], scale: f32, bias: f32, out: &mut [f32]) {
        assert_eq!(acc.len(), out.len());
        for (o, &s) in out.iter_mut().zip(acc) {
            *o = s as f32 * scale + bias;
        }
    }
}

simd_kernel! {
    /// Dequantizes integer GEMM output rows of a `[rows, w_scales.len()]`
    /// matrix with per-column weight scales:
    /// `out[r][j] = acc[r][j] as f32 * (in_scale * w_scales[j]) + bias[j]`.
    ///
    /// # Panics
    ///
    /// Panics if lengths are inconsistent with the column count.
    dequant_bias_rows / dequant_bias_rows_avx2 / dequant_bias_rows_impl,
    (acc: &[i32], in_scale: f32, w_scales: &[f32], bias: &[f32], out: &mut [f32]) {
        let cols = w_scales.len().max(1);
        assert_eq!(acc.len(), out.len());
        assert_eq!(acc.len() % cols, 0);
        assert_eq!(bias.len(), w_scales.len());
        for (acc_row, out_row) in acc.chunks_exact(cols).zip(out.chunks_exact_mut(cols)) {
            for (((o, &s), &ws), &b) in out_row
                .iter_mut()
                .zip(acc_row)
                .zip(w_scales)
                .zip(bias)
            {
                *o = s as f32 * (in_scale * ws) + b;
            }
        }
    }
}

/// Multiplies `a [m, k] x b^T` for a row-major `b [n, k]` into `out [m, n]`
/// of `i32` accumulators ("nt": the right operand is stored transposed, so
/// both operands stream contiguously along `k`).
///
/// Every output element is an exact integer dot product — `i8` products fit
/// `i16`, the `i32` accumulator cannot overflow for `k` below the asserted
/// bound — so the AVX2 and portable compilations are bit-identical no matter
/// how the accumulation is reordered.
///
/// # Panics
///
/// Panics if the slice lengths disagree with `m`, `k`, `n`, or if `k` is
/// large enough that `k * 127 * 127` could overflow `i32`.
pub fn matmul_i8_nt(a: &[i8], b: &[i8], out: &mut [i32], m: usize, k: usize, n: usize) {
    crate::opcount::count_matmul_i8();
    assert_eq!(a.len(), m * k, "lhs length != m*k");
    assert_eq!(b.len(), n * k, "rhs length != n*k");
    assert_eq!(out.len(), m * n, "out length != m*n");
    assert!(
        k <= i32::MAX as usize / (QMAX * QMAX) as usize,
        "k={k} could overflow the i32 accumulator"
    );
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: the AVX2 kernel is only reached after runtime detection
        // confirms the CPU supports it.
        unsafe { matmul_i8_nt_avx2(a, b, out, m, k, n) };
        return;
    }
    matmul_i8_nt_impl(a, b, out, m, k, n);
}

/// The portable integer GEMM, exposed for benchmarks and the bit-identity
/// tests that pin the dispatched kernel to it. Same argument contract as
/// [`matmul_i8_nt`].
///
/// # Panics
///
/// Panics under the same conditions as [`matmul_i8_nt`].
pub fn matmul_i8_nt_portable(a: &[i8], b: &[i8], out: &mut [i32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "lhs length != m*k");
    assert_eq!(b.len(), n * k, "rhs length != n*k");
    assert_eq!(out.len(), m * n, "out length != m*n");
    assert!(
        k <= i32::MAX as usize / (QMAX * QMAX) as usize,
        "k={k} could overflow the i32 accumulator"
    );
    matmul_i8_nt_impl(a, b, out, m, k, n);
}

#[inline(always)]
fn matmul_i8_nt_impl(a: &[i8], b: &[i8], out: &mut [i32], m: usize, k: usize, n: usize) {
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        for j in 0..n {
            let b_row = &b[j * k..(j + 1) * k];
            let mut acc = 0i32;
            for (&x, &y) in a_row.iter().zip(b_row) {
                acc += x as i32 * y as i32;
            }
            out[i * n + j] = acc;
        }
    }
}

/// Hand-vectorized AVX2 integer GEMM: 16 `i8` pairs are widened to `i16`
/// lanes and folded with `pmaddwd` into 8 `i32` partial sums; four `b` rows
/// share each widened `a` segment so the accumulators stay in registers.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn matmul_i8_nt_avx2(a: &[i8], b: &[i8], out: &mut [i32], m: usize, k: usize, n: usize) {
    use std::arch::x86_64::*;

    /// 16 `i8`s at `p`, sign-extended into 16 `i16` lanes.
    #[inline(always)]
    unsafe fn widen16(p: *const i8) -> __m256i {
        _mm256_cvtepi8_epi16(_mm_loadu_si128(p as *const __m128i))
    }

    /// Sum of the 8 `i32` lanes.
    #[inline(always)]
    unsafe fn hsum(v: __m256i) -> i32 {
        let s = _mm_add_epi32(_mm256_castsi256_si128(v), _mm256_extracti128_si256::<1>(v));
        let s = _mm_add_epi32(s, _mm_shuffle_epi32::<0b01_00_11_10>(s));
        let s = _mm_add_epi32(s, _mm_shuffle_epi32::<0b00_00_00_01>(s));
        _mm_cvtsi128_si32(s)
    }

    let kv = k - (k % 16);
    for i in 0..m {
        let a_ptr = a.as_ptr().add(i * k);
        let mut j = 0;
        // Full 4-column tiles: one widened `a` segment feeds four dot rows.
        while j + 4 <= n {
            let b0 = b.as_ptr().add(j * k);
            let b1 = b.as_ptr().add((j + 1) * k);
            let b2 = b.as_ptr().add((j + 2) * k);
            let b3 = b.as_ptr().add((j + 3) * k);
            let mut acc0 = _mm256_setzero_si256();
            let mut acc1 = _mm256_setzero_si256();
            let mut acc2 = _mm256_setzero_si256();
            let mut acc3 = _mm256_setzero_si256();
            let mut kk = 0;
            while kk < kv {
                let va = widen16(a_ptr.add(kk));
                acc0 = _mm256_add_epi32(acc0, _mm256_madd_epi16(va, widen16(b0.add(kk))));
                acc1 = _mm256_add_epi32(acc1, _mm256_madd_epi16(va, widen16(b1.add(kk))));
                acc2 = _mm256_add_epi32(acc2, _mm256_madd_epi16(va, widen16(b2.add(kk))));
                acc3 = _mm256_add_epi32(acc3, _mm256_madd_epi16(va, widen16(b3.add(kk))));
                kk += 16;
            }
            let mut sums = [hsum(acc0), hsum(acc1), hsum(acc2), hsum(acc3)];
            for kk in kv..k {
                let x = *a_ptr.add(kk) as i32;
                sums[0] += x * *b0.add(kk) as i32;
                sums[1] += x * *b1.add(kk) as i32;
                sums[2] += x * *b2.add(kk) as i32;
                sums[3] += x * *b3.add(kk) as i32;
            }
            out[i * n + j..i * n + j + 4].copy_from_slice(&sums);
            j += 4;
        }
        // Remainder columns: one dot row at a time.
        while j < n {
            let b_ptr = b.as_ptr().add(j * k);
            let mut acc = _mm256_setzero_si256();
            let mut kk = 0;
            while kk < kv {
                acc = _mm256_add_epi32(
                    acc,
                    _mm256_madd_epi16(widen16(a_ptr.add(kk)), widen16(b_ptr.add(kk))),
                );
                kk += 16;
            }
            let mut sum = hsum(acc);
            for kk in kv..k {
                sum += *a_ptr.add(kk) as i32 * *b_ptr.add(kk) as i32;
            }
            out[i * n + j] = sum;
            j += 1;
        }
    }
}

/// [`matmul_i8_nt`] with a pre-widened *left* operand: `a` is a
/// [`PackedI16`] of the `[m, k]` matrix, so the AVX2 body loads its 16-lane
/// `i16` segments directly instead of sign-extending on every pass. Widening
/// is exact and integer accumulation is exact, so results are bit-identical
/// to [`matmul_i8_nt`] on the original `i8` words.
///
/// # Panics
///
/// Panics under the same conditions as [`matmul_i8_nt`].
pub fn matmul_i8_nt_wa(a: &PackedI16, b: &[i8], out: &mut [i32], n: usize) {
    crate::opcount::count_matmul_i8();
    let (m, k) = (a.rows(), a.k());
    assert_eq!(b.len(), n * k, "rhs length != n*k");
    assert_eq!(out.len(), m * n, "out length != m*n");
    assert!(
        k <= i32::MAX as usize / (QMAX * QMAX) as usize,
        "k={k} could overflow the i32 accumulator"
    );
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: reached only after runtime detection confirms AVX2.
        unsafe { matmul_i8_nt_wa_avx2(a.data(), b, out, m, k, n) };
        return;
    }
    matmul_i8_nt_wa_impl(a.data(), b, out, m, k, n);
}

#[inline(always)]
fn matmul_i8_nt_wa_impl(aw: &[i16], b: &[i8], out: &mut [i32], m: usize, k: usize, n: usize) {
    for i in 0..m {
        let a_row = &aw[i * k..(i + 1) * k];
        for j in 0..n {
            let b_row = &b[j * k..(j + 1) * k];
            let mut acc = 0i32;
            for (&x, &y) in a_row.iter().zip(b_row) {
                acc += x as i32 * y as i32;
            }
            out[i * n + j] = acc;
        }
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn matmul_i8_nt_wa_avx2(
    aw: &[i16],
    b: &[i8],
    out: &mut [i32],
    m: usize,
    k: usize,
    n: usize,
) {
    use std::arch::x86_64::*;

    /// 16 `i8`s at `p`, sign-extended into 16 `i16` lanes.
    #[inline(always)]
    unsafe fn widen16(p: *const i8) -> __m256i {
        _mm256_cvtepi8_epi16(_mm_loadu_si128(p as *const __m128i))
    }

    /// 16 pre-widened `i16` lanes at `p`.
    #[inline(always)]
    unsafe fn load16w(p: *const i16) -> __m256i {
        _mm256_loadu_si256(p as *const __m256i)
    }

    /// Sum of the 8 `i32` lanes.
    #[inline(always)]
    unsafe fn hsum(v: __m256i) -> i32 {
        let s = _mm_add_epi32(_mm256_castsi256_si128(v), _mm256_extracti128_si256::<1>(v));
        let s = _mm_add_epi32(s, _mm_shuffle_epi32::<0b01_00_11_10>(s));
        let s = _mm_add_epi32(s, _mm_shuffle_epi32::<0b00_00_00_01>(s));
        _mm_cvtsi128_si32(s)
    }

    let kv = k - (k % 16);
    for i in 0..m {
        let a_ptr = aw.as_ptr().add(i * k);
        let mut j = 0;
        while j + 4 <= n {
            let b0 = b.as_ptr().add(j * k);
            let b1 = b.as_ptr().add((j + 1) * k);
            let b2 = b.as_ptr().add((j + 2) * k);
            let b3 = b.as_ptr().add((j + 3) * k);
            let mut acc0 = _mm256_setzero_si256();
            let mut acc1 = _mm256_setzero_si256();
            let mut acc2 = _mm256_setzero_si256();
            let mut acc3 = _mm256_setzero_si256();
            let mut kk = 0;
            while kk < kv {
                let va = load16w(a_ptr.add(kk));
                acc0 = _mm256_add_epi32(acc0, _mm256_madd_epi16(va, widen16(b0.add(kk))));
                acc1 = _mm256_add_epi32(acc1, _mm256_madd_epi16(va, widen16(b1.add(kk))));
                acc2 = _mm256_add_epi32(acc2, _mm256_madd_epi16(va, widen16(b2.add(kk))));
                acc3 = _mm256_add_epi32(acc3, _mm256_madd_epi16(va, widen16(b3.add(kk))));
                kk += 16;
            }
            let mut sums = [hsum(acc0), hsum(acc1), hsum(acc2), hsum(acc3)];
            for kk in kv..k {
                let x = *a_ptr.add(kk) as i32;
                sums[0] += x * *b0.add(kk) as i32;
                sums[1] += x * *b1.add(kk) as i32;
                sums[2] += x * *b2.add(kk) as i32;
                sums[3] += x * *b3.add(kk) as i32;
            }
            out[i * n + j..i * n + j + 4].copy_from_slice(&sums);
            j += 4;
        }
        while j < n {
            let b_ptr = b.as_ptr().add(j * k);
            let mut acc = _mm256_setzero_si256();
            let mut kk = 0;
            while kk < kv {
                acc = _mm256_add_epi32(
                    acc,
                    _mm256_madd_epi16(load16w(a_ptr.add(kk)), widen16(b_ptr.add(kk))),
                );
                kk += 16;
            }
            let mut sum = hsum(acc);
            for kk in kv..k {
                sum += *a_ptr.add(kk) as i32 * *b_ptr.add(kk) as i32;
            }
            out[i * n + j] = sum;
            j += 1;
        }
    }
}

/// [`matmul_i8_nt`] with a pre-widened *right* operand: `b` is a
/// [`PackedI16`] of the `[n, k]` matrix (the natural layout of a linear
/// layer's quantized weights). Bit-identical to [`matmul_i8_nt`].
///
/// # Panics
///
/// Panics under the same conditions as [`matmul_i8_nt`].
pub fn matmul_i8_nt_wb(a: &[i8], b: &PackedI16, out: &mut [i32], m: usize) {
    crate::opcount::count_matmul_i8();
    let (n, k) = (b.rows(), b.k());
    assert_eq!(a.len(), m * k, "lhs length != m*k");
    assert_eq!(out.len(), m * n, "out length != m*n");
    assert!(
        k <= i32::MAX as usize / (QMAX * QMAX) as usize,
        "k={k} could overflow the i32 accumulator"
    );
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: reached only after runtime detection confirms AVX2.
        unsafe { matmul_i8_nt_wb_avx2(a, b.data(), out, m, k, n) };
        return;
    }
    matmul_i8_nt_wb_impl(a, b.data(), out, m, k, n);
}

#[inline(always)]
fn matmul_i8_nt_wb_impl(a: &[i8], bw: &[i16], out: &mut [i32], m: usize, k: usize, n: usize) {
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        for j in 0..n {
            let b_row = &bw[j * k..(j + 1) * k];
            let mut acc = 0i32;
            for (&x, &y) in a_row.iter().zip(b_row) {
                acc += x as i32 * y as i32;
            }
            out[i * n + j] = acc;
        }
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn matmul_i8_nt_wb_avx2(
    a: &[i8],
    bw: &[i16],
    out: &mut [i32],
    m: usize,
    k: usize,
    n: usize,
) {
    use std::arch::x86_64::*;

    /// 16 `i8`s at `p`, sign-extended into 16 `i16` lanes.
    #[inline(always)]
    unsafe fn widen16(p: *const i8) -> __m256i {
        _mm256_cvtepi8_epi16(_mm_loadu_si128(p as *const __m128i))
    }

    /// 16 pre-widened `i16` lanes at `p`.
    #[inline(always)]
    unsafe fn load16w(p: *const i16) -> __m256i {
        _mm256_loadu_si256(p as *const __m256i)
    }

    /// Sum of the 8 `i32` lanes.
    #[inline(always)]
    unsafe fn hsum(v: __m256i) -> i32 {
        let s = _mm_add_epi32(_mm256_castsi256_si128(v), _mm256_extracti128_si256::<1>(v));
        let s = _mm_add_epi32(s, _mm_shuffle_epi32::<0b01_00_11_10>(s));
        let s = _mm_add_epi32(s, _mm_shuffle_epi32::<0b00_00_00_01>(s));
        _mm_cvtsi128_si32(s)
    }

    let kv = k - (k % 16);
    for i in 0..m {
        let a_ptr = a.as_ptr().add(i * k);
        let mut j = 0;
        while j + 4 <= n {
            let b0 = bw.as_ptr().add(j * k);
            let b1 = bw.as_ptr().add((j + 1) * k);
            let b2 = bw.as_ptr().add((j + 2) * k);
            let b3 = bw.as_ptr().add((j + 3) * k);
            let mut acc0 = _mm256_setzero_si256();
            let mut acc1 = _mm256_setzero_si256();
            let mut acc2 = _mm256_setzero_si256();
            let mut acc3 = _mm256_setzero_si256();
            let mut kk = 0;
            while kk < kv {
                let va = widen16(a_ptr.add(kk));
                acc0 = _mm256_add_epi32(acc0, _mm256_madd_epi16(va, load16w(b0.add(kk))));
                acc1 = _mm256_add_epi32(acc1, _mm256_madd_epi16(va, load16w(b1.add(kk))));
                acc2 = _mm256_add_epi32(acc2, _mm256_madd_epi16(va, load16w(b2.add(kk))));
                acc3 = _mm256_add_epi32(acc3, _mm256_madd_epi16(va, load16w(b3.add(kk))));
                kk += 16;
            }
            let mut sums = [hsum(acc0), hsum(acc1), hsum(acc2), hsum(acc3)];
            for kk in kv..k {
                let x = *a_ptr.add(kk) as i32;
                sums[0] += x * *b0.add(kk) as i32;
                sums[1] += x * *b1.add(kk) as i32;
                sums[2] += x * *b2.add(kk) as i32;
                sums[3] += x * *b3.add(kk) as i32;
            }
            out[i * n + j..i * n + j + 4].copy_from_slice(&sums);
            j += 4;
        }
        while j < n {
            let b_ptr = bw.as_ptr().add(j * k);
            let mut acc = _mm256_setzero_si256();
            let mut kk = 0;
            while kk < kv {
                acc = _mm256_add_epi32(
                    acc,
                    _mm256_madd_epi16(widen16(a_ptr.add(kk)), load16w(b_ptr.add(kk))),
                );
                kk += 16;
            }
            let mut sum = hsum(acc);
            for kk in kv..k {
                sum += *a_ptr.add(kk) as i32 * *b_ptr.add(kk) as i32;
            }
            out[i * n + j] = sum;
            j += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SeededRng;

    fn probe_i8(len: usize, seed: u64) -> Vec<i8> {
        let mut rng = SeededRng::new(seed);
        (0..len)
            .map(|_| (rng.below(255) as i32 - 127) as i8)
            .collect()
    }

    #[test]
    fn quantize_matches_reference_semantics() {
        // Half-away-from-zero ties, saturation, NaN→0.
        assert_eq!(quantize_one(2.5, 1.0), 3);
        assert_eq!(quantize_one(-2.5, 1.0), -3);
        assert_eq!(quantize_one(1000.0, 1.0), 127);
        assert_eq!(quantize_one(-1000.0, 1.0), -127);
        assert_eq!(quantize_one(f32::INFINITY, 1.0), 127);
        assert_eq!(quantize_one(f32::NEG_INFINITY, 1.0), -127);
        assert_eq!(quantize_one(f32::NAN, 1.0), 0);
        assert_eq!(quantize_one(0.0, 1.0), 0);
    }

    #[test]
    fn slice_kernels_match_scalar_and_dispatch_is_bit_identical() {
        let mut rng = SeededRng::new(3);
        for len in [1usize, 7, 16, 31, 257] {
            let src: Vec<f32> = (0..len)
                .map(|i| match i % 5 {
                    0 => f32::NAN,
                    1 => f32::INFINITY,
                    2 => -(i as f32) * 0.37,
                    _ => (rng.below(1000) as f32 - 500.0) * 0.01,
                })
                .collect();
            let scale = 0.019;
            let mut d = vec![0i8; len];
            let mut p = vec![0i8; len];
            quantize_slice(&src, scale, &mut d);
            quantize_slice_impl(&src, scale, &mut p);
            assert_eq!(d, p, "quantize dispatch len {len}");
            for (q, &x) in d.iter().zip(&src) {
                assert_eq!(*q, quantize_one(x, scale), "scalar parity");
            }

            let mut fd = vec![0.0f32; len];
            let mut fp = vec![0.0f32; len];
            dequantize_slice(&d, scale, &mut fd);
            dequantize_slice_impl(&p, scale, &mut fp);
            assert_eq!(fd, fp, "dequantize dispatch len {len}");

            let mut rd = vec![0i8; len];
            let mut rp = vec![0i8; len];
            requantize_slice(&d, scale, scale * 2.0, &mut rd);
            requantize_slice_impl(&p, scale, scale * 2.0, &mut rp);
            assert_eq!(rd, rp, "requantize dispatch len {len}");
            for (r, &q) in rd.iter().zip(&d) {
                assert_eq!(*r, quantize_one(dequantize_one(q, scale), scale * 2.0));
            }
        }
    }

    #[test]
    fn requantize_to_same_scale_is_identity() {
        let src = probe_i8(64, 9);
        let mut dst = vec![0i8; 64];
        requantize_slice(&src, 0.5, 0.5, &mut dst);
        assert_eq!(src, dst);
    }

    #[test]
    fn dequant_bias_kernels_match_scalar() {
        let acc: Vec<i32> = (0..24).map(|i| (i - 12) * 1000).collect();
        let mut out = vec![0.0f32; 24];
        dequant_bias_row(&acc, 0.003, -0.5, &mut out);
        for (o, &s) in out.iter().zip(&acc) {
            assert_eq!(*o, s as f32 * 0.003 + -0.5);
        }

        let w_scales = [0.01f32, 0.02, 0.04, 0.08];
        let bias = [1.0f32, -1.0, 0.0, 0.5];
        let mut out = vec![0.0f32; 24];
        dequant_bias_rows(&acc, 0.5, &w_scales, &bias, &mut out);
        for r in 0..6 {
            for j in 0..4 {
                let expect = acc[r * 4 + j] as f32 * (0.5 * w_scales[j]) + bias[j];
                assert_eq!(out[r * 4 + j], expect);
            }
        }
    }

    #[test]
    fn matmul_i8_small_known_values() {
        // a = [[1, 2, 3]], b rows = [[1, 1, 1], [-1, 0, 2]]
        let a = [1i8, 2, 3];
        let b = [1i8, 1, 1, -1, 0, 2];
        let mut out = [0i32; 2];
        matmul_i8_nt(&a, &b, &mut out, 1, 3, 2);
        assert_eq!(out, [6, 5]);
    }

    #[test]
    fn matmul_i8_dispatch_is_bit_identical_to_portable() {
        // Shapes exercise the 4-column tile, the remainder columns, and the
        // 16-wide k vector body plus its scalar tail.
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (3, 17, 5),
            (4, 16, 4),
            (7, 33, 9),
            (2, 64, 13),
            (5, 100, 6),
        ] {
            let a = probe_i8(m * k, 11 + m as u64);
            let b = probe_i8(n * k, 23 + n as u64);
            let mut fast = vec![0i32; m * n];
            let mut slow = vec![1i32; m * n];
            matmul_i8_nt(&a, &b, &mut fast, m, k, n);
            matmul_i8_nt_portable(&a, &b, &mut slow, m, k, n);
            assert_eq!(fast, slow, "{m}x{k}x{n}");
        }
    }

    #[test]
    fn widened_gemms_are_bit_identical_to_i8() {
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (3, 17, 5),
            (4, 16, 4),
            (7, 33, 9),
            (2, 64, 13),
        ] {
            let a = probe_i8(m * k, 31 + m as u64);
            let b = probe_i8(n * k, 37 + n as u64);
            let mut plain = vec![0i32; m * n];
            matmul_i8_nt(&a, &b, &mut plain, m, k, n);

            let wa = PackedI16::widen(&a, m, k);
            let mut fast = vec![1i32; m * n];
            matmul_i8_nt_wa(&wa, &b, &mut fast, n);
            assert_eq!(fast, plain, "wa {m}x{k}x{n}");

            let wb = PackedI16::widen(&b, n, k);
            let mut fast = vec![1i32; m * n];
            matmul_i8_nt_wb(&a, &wb, &mut fast, m);
            assert_eq!(fast, plain, "wb {m}x{k}x{n}");
        }
    }

    #[test]
    fn matmul_i8_saturating_inputs_do_not_overflow() {
        let k = 512;
        let a = vec![127i8; k];
        let b = vec![-127i8; 2 * k];
        let mut out = [0i32; 2];
        matmul_i8_nt(&a, &b, &mut out, 1, k, 2);
        assert_eq!(out, [512 * 127 * -127; 2]);
    }

    #[test]
    #[should_panic(expected = "overflow the i32 accumulator")]
    fn matmul_i8_rejects_huge_k() {
        let k = i32::MAX as usize / (127 * 127) + 1;
        // Zero-length slices fail the length asserts *after* the overflow
        // check only if ordered that way; keep slices consistent.
        let a = vec![0i8; k];
        let b = vec![0i8; k];
        let mut out = [0i32; 1];
        matmul_i8_nt(&a, &b, &mut out, 1, k, 1);
    }

    #[test]
    fn scale_helpers_match_int8_contract() {
        assert!((scale_for_max_abs(12.7) - 0.1).abs() < 1e-6);
        assert!(scale_for_max_abs(0.0) > 0.0);
        assert!(scale_for_max_abs(f32::INFINITY).is_finite());
        assert_eq!(
            slice_max_abs_finite(&[1.0, f32::NAN, -3.0, f32::INFINITY]),
            3.0
        );
        assert_eq!(slice_max_abs_finite(&[f32::NAN]), 0.0);
    }
}
