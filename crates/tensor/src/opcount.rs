//! Optional global operation counters for the compute kernels.
//!
//! Disabled by default: the hot-path cost is one relaxed atomic load per
//! kernel *call* (not per element). When enabled — e.g. by the
//! `profile_campaign` binary — [`conv2d`] and [`matmul`] invocations are
//! counted process-wide, giving campaign profiles a cheap "how much math did
//! this take" axis next to wall time.
//!
//! [`conv2d`]: crate::conv2d
//! [`matmul`]: crate::matmul

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

static ENABLED: AtomicBool = AtomicBool::new(false);
static CONV2D: AtomicU64 = AtomicU64::new(0);
static MATMUL: AtomicU64 = AtomicU64::new(0);

/// Turns counting on or off (process-wide).
pub fn enable(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether counting is currently enabled.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Zeroes both counters.
pub fn reset() {
    CONV2D.store(0, Ordering::Relaxed);
    MATMUL.store(0, Ordering::Relaxed);
}

/// Current `(conv2d calls, matmul calls)` totals.
///
/// Note that [`conv2d`](crate::conv2d) is built on `matmul`, so convolutions
/// contribute to both counters.
pub fn snapshot() -> (u64, u64) {
    (
        CONV2D.load(Ordering::Relaxed),
        MATMUL.load(Ordering::Relaxed),
    )
}

/// Called by the conv2d kernel.
#[inline]
pub(crate) fn count_conv2d() {
    if ENABLED.load(Ordering::Relaxed) {
        CONV2D.fetch_add(1, Ordering::Relaxed);
    }
}

/// Called by the matmul kernel.
#[inline]
pub(crate) fn count_matmul() {
    if ENABLED.load(Ordering::Relaxed) {
        MATMUL.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{conv2d, matmul, ConvSpec, Tensor};

    #[test]
    fn disabled_by_default_and_counts_when_enabled() {
        // Serialize against other tests via the enable flag being ours alone:
        // the suite only toggles counting in this test.
        reset();
        let a = Tensor::ones(&[2, 2]);
        matmul(&a, &a);
        assert_eq!(snapshot(), (0, 0), "disabled: nothing counted");

        enable(true);
        let x = Tensor::ones(&[1, 1, 3, 3]);
        let w = Tensor::ones(&[1, 1, 3, 3]);
        let b = Tensor::zeros(&[1]);
        conv2d(&x, &w, &b, &ConvSpec::new());
        matmul(&a, &a);
        enable(false);

        let (convs, matmuls) = snapshot();
        // `>=` rather than `==`: sibling tests may run kernels concurrently
        // while counting is enabled.
        assert!(convs >= 1, "conv2d counted: {convs}");
        // conv2d runs one matmul per (batch, group) internally, so the
        // explicit matmul plus conv2d's internal one gives at least two.
        assert!(matmuls >= 2, "matmul counted: {matmuls}");
        assert!(!enabled());
        reset();
        assert_eq!(snapshot(), (0, 0));
    }
}
