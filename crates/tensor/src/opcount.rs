//! Optional global operation counters for the compute kernels.
//!
//! Disabled by default: the hot-path cost is one relaxed atomic load per
//! kernel *call* (not per element). When enabled — e.g. by the
//! `profile_campaign` binary — [`conv2d`], [`matmul`], the elementwise tail
//! (add/mul/relu/softmax/…), pooling, and batch-norm invocations are
//! counted process-wide, giving campaign profiles a cheap "how much math did
//! this take" axis next to wall time that also covers the memory-bound tail.
//!
//! [`conv2d`]: crate::conv2d
//! [`matmul`]: crate::matmul

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

static ENABLED: AtomicBool = AtomicBool::new(false);
static CONV2D: AtomicU64 = AtomicU64::new(0);
static MATMUL: AtomicU64 = AtomicU64::new(0);
static MATMUL_I8: AtomicU64 = AtomicU64::new(0);
static ELEMENTWISE: AtomicU64 = AtomicU64::new(0);
static POOL: AtomicU64 = AtomicU64::new(0);
static NORM: AtomicU64 = AtomicU64::new(0);

/// One snapshot of every kernel-call counter (see [`counts`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCounts {
    /// `conv2d` invocations.
    pub conv2d: u64,
    /// `matmul` invocations (convolutions contribute here too).
    pub matmul: u64,
    /// Integer `matmul_i8_nt` invocations (quantized conv/linear contribute
    /// here, not to `matmul`).
    pub matmul_i8: u64,
    /// Elementwise tensor ops: add/sub/mul/scale/relu/axpy/bias/softmax.
    pub elementwise: u64,
    /// Max/avg pooling invocations.
    pub pool: u64,
    /// Batch-norm applications.
    pub norm: u64,
}

/// Turns counting on or off (process-wide).
pub fn enable(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether counting is currently enabled.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Zeroes every counter.
pub fn reset() {
    CONV2D.store(0, Ordering::Relaxed);
    MATMUL.store(0, Ordering::Relaxed);
    MATMUL_I8.store(0, Ordering::Relaxed);
    ELEMENTWISE.store(0, Ordering::Relaxed);
    POOL.store(0, Ordering::Relaxed);
    NORM.store(0, Ordering::Relaxed);
}

/// Current `(conv2d calls, matmul calls)` totals.
///
/// Note that [`conv2d`](crate::conv2d) is built on `matmul`, so convolutions
/// contribute to both counters. See [`counts`] for the full breakdown
/// including the elementwise/pool/norm tail.
pub fn snapshot() -> (u64, u64) {
    (
        CONV2D.load(Ordering::Relaxed),
        MATMUL.load(Ordering::Relaxed),
    )
}

/// Current totals of every counter, including the memory-bound tail.
pub fn counts() -> OpCounts {
    OpCounts {
        conv2d: CONV2D.load(Ordering::Relaxed),
        matmul: MATMUL.load(Ordering::Relaxed),
        matmul_i8: MATMUL_I8.load(Ordering::Relaxed),
        elementwise: ELEMENTWISE.load(Ordering::Relaxed),
        pool: POOL.load(Ordering::Relaxed),
        norm: NORM.load(Ordering::Relaxed),
    }
}

#[inline]
fn bump(counter: &AtomicU64) {
    if ENABLED.load(Ordering::Relaxed) {
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

/// Called by the conv2d kernel.
#[inline]
pub(crate) fn count_conv2d() {
    bump(&CONV2D);
}

/// Called by the matmul kernel.
#[inline]
pub(crate) fn count_matmul() {
    bump(&MATMUL);
}

/// Called by the integer matmul kernel.
#[inline]
pub(crate) fn count_matmul_i8() {
    bump(&MATMUL_I8);
}

/// Called by the elementwise tensor ops.
#[inline]
pub(crate) fn count_elementwise() {
    bump(&ELEMENTWISE);
}

/// Called by the pooling kernels.
#[inline]
pub(crate) fn count_pool() {
    bump(&POOL);
}

/// Called by the batch-norm kernel.
#[inline]
pub(crate) fn count_norm() {
    bump(&NORM);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{conv2d, matmul, ConvSpec, Tensor};

    #[test]
    fn disabled_by_default_and_counts_when_enabled() {
        // Serialize against other tests via the enable flag being ours alone:
        // the suite only toggles counting in this test.
        reset();
        let a = Tensor::ones(&[2, 2]);
        matmul(&a, &a);
        a.relu();
        assert_eq!(snapshot(), (0, 0), "disabled: nothing counted");
        assert_eq!(counts(), OpCounts::default());

        enable(true);
        let x = Tensor::ones(&[1, 1, 3, 3]);
        let w = Tensor::ones(&[1, 1, 3, 3]);
        let b = Tensor::zeros(&[1]);
        conv2d(&x, &w, &b, &ConvSpec::new());
        matmul(&a, &a);
        a.relu();
        a.add(&a);
        crate::max_pool2d(&x, &crate::PoolSpec::new(2, 1));
        enable(false);

        let (convs, matmuls) = snapshot();
        let all = counts();
        // `>=` rather than `==`: sibling tests may run kernels concurrently
        // while counting is enabled.
        assert!(convs >= 1, "conv2d counted: {convs}");
        // conv2d runs one matmul per (batch, group) internally, so the
        // explicit matmul plus conv2d's internal one gives at least two.
        assert!(matmuls >= 2, "matmul counted: {matmuls}");
        assert_eq!((all.conv2d, all.matmul), (convs, matmuls));
        assert!(
            all.elementwise >= 2,
            "relu+add counted: {}",
            all.elementwise
        );
        assert!(all.pool >= 1, "pooling counted: {}", all.pool);
        assert!(!enabled());
        reset();
        assert_eq!(counts(), OpCounts::default());
    }
}
