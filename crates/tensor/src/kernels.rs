//! Runtime-dispatched slice kernels for the elementwise tail.
//!
//! The FLOP-heavy kernels ([`matmul`], [`conv2d`]) were vectorized first;
//! after prefix caching and trial fusion the campaign hot loop is dominated
//! by the memory-bound tail — ReLU, tensor add/mul, batch-norm inference,
//! pooling, softmax. This module rewrites that tail as flat slice kernels
//! and applies the same dispatch pattern as `linalg::block_rows`: one
//! portable body, additionally compiled with AVX2 codegen enabled on x86-64
//! and selected by runtime CPU detection.
//!
//! Every kernel is bit-identical across the two compilations: only the SIMD
//! lane width changes, each output element sees the identical sequence of
//! f32 operations (Rust never contracts `a * b + c` into a fused
//! multiply-add, and no reduction order is altered), so the dispatch is
//! unobservable in results. Reductions whose order *would* matter — the
//! softmax row maximum and denominator — stay strictly in input order in
//! both builds.
//!
//! [`matmul`]: crate::matmul
//! [`conv2d`]: crate::conv2d

/// Length below which the pure-streaming kernels (`add`/`mul`/`relu`) still
/// dispatch to their AVX2 compilation. Short slices are L1-resident and
/// compute-bound, where the wider lanes win 1.2–2.6×; past this point the
/// ops are memory-bound and the AVX2 build's 32-byte unaligned loads make it
/// *slower* than the portable build's 128-bit auto-vectorization (the
/// 0.90–0.94× regression the campaign bench exposed), so long slices take
/// the portable body.
pub const STREAMING_AVX2_MAX_LEN: usize = 2048;

/// Defines the three compilations of one kernel: a public front that
/// dispatches on runtime AVX2 detection, the AVX2-enabled recompilation, and
/// the shared portable body. Mirrors the `block_rows` trio in `linalg`.
///
/// The `avx2_when = <expr>` form adds a dispatch predicate (evaluated with
/// the kernel arguments in scope) that must also hold for the AVX2 build to
/// be chosen — used to keep memory-bound streaming kernels on the portable
/// body at lengths where wider lanes cannot pay for themselves. The
/// predicate only picks between two bit-identical compilations, so it is
/// unobservable in results.
macro_rules! simd_kernel {
    ($(#[$meta:meta])* $name:ident / $avx2:ident / $imp:ident,
     ($($arg:ident: $ty:ty),* $(,)?) $body:block) => {
        simd_kernel! {
            $(#[$meta])* $name / $avx2 / $imp,
            ($($arg: $ty),*), avx2_when = true, $body
        }
    };
    ($(#[$meta:meta])* $name:ident / $avx2:ident / $imp:ident,
     ($($arg:ident: $ty:ty),* $(,)?), avx2_when = $gate:expr, $body:block) => {
        $(#[$meta])*
        // Flat slice kernels spell out their geometry (widths, strides,
        // window sizes) as scalars on purpose; a params struct would only
        // obscure the call sites.
        #[allow(clippy::too_many_arguments)]
        pub fn $name($($arg: $ty),*) {
            #[cfg(target_arch = "x86_64")]
            {
                let wants_avx2: bool = $gate;
                if wants_avx2 && std::arch::is_x86_feature_detected!("avx2") {
                    // SAFETY: the AVX2 compilation of the kernel is only
                    // reached after runtime detection confirms the CPU
                    // supports it.
                    unsafe { $avx2($($arg),*) };
                    return;
                }
            }
            $imp($($arg),*);
        }

        /// The portable body recompiled with AVX2 lanes. Same ops in the
        /// same per-element order — see the module docs.
        #[cfg(target_arch = "x86_64")]
        #[target_feature(enable = "avx2")]
        #[allow(clippy::too_many_arguments)]
        unsafe fn $avx2($($arg: $ty),*) {
            $imp($($arg),*)
        }

        #[inline(always)]
        #[allow(clippy::too_many_arguments)]
        fn $imp($($arg: $ty),*) $body
    };
}

// The quantization slice kernels in `qkernels` use the same dispatch trio.
pub(crate) use simd_kernel;

simd_kernel! {
    /// `out[i] = a[i] + b[i]`.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    add / add_avx2 / add_impl,
    (a: &[f32], b: &[f32], out: &mut [f32]),
    avx2_when = a.len() <= STREAMING_AVX2_MAX_LEN, {
        assert_eq!(a.len(), b.len());
        assert_eq!(a.len(), out.len());
        for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
            *o = x + y;
        }
    }
}

simd_kernel! {
    /// `out[i] = a[i] - b[i]`.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    sub / sub_avx2 / sub_impl, (a: &[f32], b: &[f32], out: &mut [f32]) {
        assert_eq!(a.len(), b.len());
        assert_eq!(a.len(), out.len());
        for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
            *o = x - y;
        }
    }
}

simd_kernel! {
    /// `out[i] = a[i] * b[i]`.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    mul / mul_avx2 / mul_impl,
    (a: &[f32], b: &[f32], out: &mut [f32]),
    avx2_when = a.len() <= STREAMING_AVX2_MAX_LEN, {
        assert_eq!(a.len(), b.len());
        assert_eq!(a.len(), out.len());
        for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
            *o = x * y;
        }
    }
}

simd_kernel! {
    /// `out[i] += a[i]`.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    add_assign / add_assign_avx2 / add_assign_impl, (out: &mut [f32], a: &[f32]) {
        assert_eq!(a.len(), out.len());
        for (o, &x) in out.iter_mut().zip(a) {
            *o += x;
        }
    }
}

simd_kernel! {
    /// `out[i] += s * a[i]` (axpy).
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    axpy / axpy_avx2 / axpy_impl, (out: &mut [f32], a: &[f32], s: f32) {
        assert_eq!(a.len(), out.len());
        for (o, &x) in out.iter_mut().zip(a) {
            *o += s * x;
        }
    }
}

simd_kernel! {
    /// `out[i] = s * a[i]`.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    scale / scale_avx2 / scale_impl, (a: &[f32], s: f32, out: &mut [f32]) {
        assert_eq!(a.len(), out.len());
        for (o, &x) in out.iter_mut().zip(a) {
            *o = x * s;
        }
    }
}

simd_kernel! {
    /// `out[i] *= s`.
    scale_assign / scale_assign_avx2 / scale_assign_impl, (out: &mut [f32], s: f32) {
        for o in out.iter_mut() {
            *o *= s;
        }
    }
}

simd_kernel! {
    /// `out[i] = a[i] + s`.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    add_scalar / add_scalar_avx2 / add_scalar_impl, (a: &[f32], s: f32, out: &mut [f32]) {
        assert_eq!(a.len(), out.len());
        for (o, &x) in out.iter_mut().zip(a) {
            *o = x + s;
        }
    }
}

simd_kernel! {
    /// `out[i] = max(a[i], 0)` — same `f32::max` the scalar path always
    /// used, so NaN and signed-zero handling are unchanged.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    relu / relu_avx2 / relu_impl,
    (a: &[f32], out: &mut [f32]),
    avx2_when = a.len() <= STREAMING_AVX2_MAX_LEN, {
        assert_eq!(a.len(), out.len());
        for (o, &x) in out.iter_mut().zip(a) {
            *o = x.max(0.0);
        }
    }
}

simd_kernel! {
    /// Fused ReLU: `out[i] = max(a[i], 0)` and `mask[i] = (a[i] > 0) as f32`
    /// in one pass, producing both the activation and its backward mask.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    relu_mask / relu_mask_avx2 / relu_mask_impl,
    (a: &[f32], out: &mut [f32], mask: &mut [f32]) {
        assert_eq!(a.len(), out.len());
        assert_eq!(a.len(), mask.len());
        for ((&x, o), m) in a.iter().zip(out.iter_mut()).zip(mask.iter_mut()) {
            *o = x.max(0.0);
            *m = if x > 0.0 { 1.0 } else { 0.0 };
        }
    }
}

simd_kernel! {
    /// Fused leaky ReLU: `out[i] = x if x > 0 else slope * x`, with the
    /// backward mask (`1` or `slope`) filled in the same pass.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    leaky_relu_mask / leaky_relu_mask_avx2 / leaky_relu_mask_impl,
    (a: &[f32], slope: f32, out: &mut [f32], mask: &mut [f32]) {
        assert_eq!(a.len(), out.len());
        assert_eq!(a.len(), mask.len());
        for ((&x, o), m) in a.iter().zip(out.iter_mut()).zip(mask.iter_mut()) {
            let neg = x <= 0.0;
            *o = if neg { slope * x } else { x };
            *m = if neg { slope } else { 1.0 };
        }
    }
}

simd_kernel! {
    /// Adds a bias row to each row of a `[rows, bias.len()]` matrix.
    ///
    /// # Panics
    ///
    /// Panics if `out.len()` is not a multiple of `bias.len()`.
    bias_add_rows / bias_add_rows_avx2 / bias_add_rows_impl,
    (out: &mut [f32], bias: &[f32]) {
        assert_eq!(out.len() % bias.len().max(1), 0);
        for row in out.chunks_exact_mut(bias.len()) {
            for (o, &b) in row.iter_mut().zip(bias) {
                *o += b;
            }
        }
    }
}

simd_kernel! {
    /// Batch-norm inference for one feature map: writes the normalized
    /// activations `x_hat[i] = (x[i] - mean) * inv_std` (kept for backward)
    /// and the affine output `out[i] = g * x_hat[i] + b`, exactly the
    /// per-element order the scalar layer used.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    bn_fmap / bn_fmap_avx2 / bn_fmap_impl,
    (x: &[f32], mean: f32, inv_std: f32, g: f32, b: f32, x_hat: &mut [f32], out: &mut [f32]) {
        assert_eq!(x.len(), x_hat.len());
        assert_eq!(x.len(), out.len());
        for ((&v, xh), o) in x.iter().zip(x_hat.iter_mut()).zip(out.iter_mut()) {
            let n = (v - mean) * inv_std;
            *xh = n;
            *o = g * n + b;
        }
    }
}

simd_kernel! {
    /// Max-pools one feature map: `fm` is an `h`×`w` map (row stride `w`),
    /// `dst`/`argmax` are `oh`×`ow`. Window scan order (`ky` outer, `kx`
    /// inner, strict `>` keeps the first maximum) matches the scalar layer.
    ///
    /// # Panics
    ///
    /// Panics if the output slices are smaller than `oh * ow`.
    max_pool_fmap / max_pool_fmap_avx2 / max_pool_fmap_impl,
    (fm: &[f32], w: usize, oh: usize, ow: usize, kernel: usize, stride: usize,
     dst: &mut [f32], argmax: &mut [usize]) {
        assert!(dst.len() >= oh * ow && argmax.len() >= oh * ow);
        for oy in 0..oh {
            for ox in 0..ow {
                let mut best = f32::NEG_INFINITY;
                let mut best_idx = 0;
                for ky in 0..kernel {
                    for kx in 0..kernel {
                        let iy = oy * stride + ky;
                        let ix = ox * stride + kx;
                        let v = fm[iy * w + ix];
                        if v > best {
                            best = v;
                            best_idx = iy * w + ix;
                        }
                    }
                }
                dst[oy * ow + ox] = best;
                argmax[oy * ow + ox] = best_idx;
            }
        }
    }
}

simd_kernel! {
    /// Average-pools one feature map (see [`max_pool_fmap`] for geometry).
    /// Each output element accumulates its window in `ky`/`kx` order and
    /// multiplies by `norm = 1 / kernel²`, as the scalar layer did.
    ///
    /// # Panics
    ///
    /// Panics if `dst` is smaller than `oh * ow`.
    avg_pool_fmap / avg_pool_fmap_avx2 / avg_pool_fmap_impl,
    (fm: &[f32], w: usize, oh: usize, ow: usize, kernel: usize, stride: usize,
     norm: f32, dst: &mut [f32]) {
        assert!(dst.len() >= oh * ow);
        for oy in 0..oh {
            for ox in 0..ow {
                let mut acc = 0.0;
                for ky in 0..kernel {
                    for kx in 0..kernel {
                        acc += fm[(oy * stride + ky) * w + ox * stride + kx];
                    }
                }
                dst[oy * ow + ox] = acc * norm;
            }
        }
    }
}

simd_kernel! {
    /// Softmax of one row, numerically stabilized by the row maximum.
    ///
    /// The maximum fold and the denominator sum run strictly in input order
    /// in both compilations — reassociating either would change bits — so
    /// only the elementwise exponential/divide parts gain lanes.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    softmax_row / softmax_row_avx2 / softmax_row_impl, (row: &[f32], out: &mut [f32]) {
        assert_eq!(row.len(), out.len());
        let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut denom = 0.0;
        for (o, &x) in out.iter_mut().zip(row) {
            let e = (x - m).exp();
            *o = e;
            denom += e;
        }
        for o in out.iter_mut() {
            *o /= denom;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Awkward values: negatives, zeros of both signs, subnormals, large
    /// magnitudes, and NaN/Inf where the op tolerates them.
    fn probe(len: usize, salt: f32) -> Vec<f32> {
        (0..len)
            .map(|i| match i % 7 {
                0 => -0.0,
                1 => (i as f32 + salt) * 1.00001e-3,
                2 => -(i as f32) * 3.7e4,
                3 => f32::MIN_POSITIVE / 2.0,
                4 => (i as f32 + salt).sin() * 1e8,
                5 => -1.0 / (i as f32 + 1.0),
                _ => i as f32 - salt,
            })
            .collect()
    }

    /// Exact bit equality, treating NaN as equal to NaN.
    fn assert_bits_eq(a: &[f32], b: &[f32], what: &str) {
        assert_eq!(a.len(), b.len(), "{what}: length");
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "{what}[{i}]: {x} vs {y}");
        }
    }

    #[test]
    fn elementwise_dispatch_is_bit_identical_to_portable_kernels() {
        // Odd lengths exercise SIMD remainders in the AVX2 compilation.
        for len in [1usize, 7, 8, 31, 64, 257] {
            let a = probe(len, 0.25);
            let b = probe(len, 1.75);
            let mut d = vec![0.0; len];
            let mut p = vec![0.0; len];

            add(&a, &b, &mut d);
            add_impl(&a, &b, &mut p);
            assert_bits_eq(&d, &p, "add");

            sub(&a, &b, &mut d);
            sub_impl(&a, &b, &mut p);
            assert_bits_eq(&d, &p, "sub");

            mul(&a, &b, &mut d);
            mul_impl(&a, &b, &mut p);
            assert_bits_eq(&d, &p, "mul");

            d.copy_from_slice(&b);
            p.copy_from_slice(&b);
            add_assign(&mut d, &a);
            add_assign_impl(&mut p, &a);
            assert_bits_eq(&d, &p, "add_assign");

            d.copy_from_slice(&b);
            p.copy_from_slice(&b);
            axpy(&mut d, &a, 0.3333);
            axpy_impl(&mut p, &a, 0.3333);
            assert_bits_eq(&d, &p, "axpy");

            scale(&a, -1.7, &mut d);
            scale_impl(&a, -1.7, &mut p);
            assert_bits_eq(&d, &p, "scale");

            d.copy_from_slice(&a);
            p.copy_from_slice(&a);
            scale_assign(&mut d, 0.0049);
            scale_assign_impl(&mut p, 0.0049);
            assert_bits_eq(&d, &p, "scale_assign");

            add_scalar(&a, 2.5e-7, &mut d);
            add_scalar_impl(&a, 2.5e-7, &mut p);
            assert_bits_eq(&d, &p, "add_scalar");

            relu(&a, &mut d);
            relu_impl(&a, &mut p);
            assert_bits_eq(&d, &p, "relu");

            let (mut dm, mut pm) = (vec![0.0; len], vec![0.0; len]);
            relu_mask(&a, &mut d, &mut dm);
            relu_mask_impl(&a, &mut p, &mut pm);
            assert_bits_eq(&d, &p, "relu_mask out");
            assert_bits_eq(&dm, &pm, "relu_mask mask");

            leaky_relu_mask(&a, 0.01, &mut d, &mut dm);
            leaky_relu_mask_impl(&a, 0.01, &mut p, &mut pm);
            assert_bits_eq(&d, &p, "leaky out");
            assert_bits_eq(&dm, &pm, "leaky mask");

            bn_fmap(&a, 0.37, 1.21, 0.9, -0.1, &mut dm, &mut d);
            bn_fmap_impl(&a, 0.37, 1.21, 0.9, -0.1, &mut pm, &mut p);
            assert_bits_eq(&d, &p, "bn out");
            assert_bits_eq(&dm, &pm, "bn x_hat");

            softmax_row(&a, &mut d);
            softmax_row_impl(&a, &mut p);
            assert_bits_eq(&d, &p, "softmax_row");
        }

        // Bias rows and pooling have 2-D geometry; probe a ragged case.
        let a = probe(6 * 9, 0.5);
        let bias = probe(9, 3.0);
        let mut d = a.clone();
        let mut p = a.clone();
        bias_add_rows(&mut d, &bias);
        bias_add_rows_impl(&mut p, &bias);
        assert_bits_eq(&d, &p, "bias_add_rows");

        let fm = probe(7 * 7, 0.125);
        let (oh, ow) = (3, 3);
        let mut d = vec![0.0; oh * ow];
        let mut p = vec![0.0; oh * ow];
        let mut da = vec![0usize; oh * ow];
        let mut pa = vec![0usize; oh * ow];
        max_pool_fmap(&fm, 7, oh, ow, 3, 2, &mut d, &mut da);
        max_pool_fmap_impl(&fm, 7, oh, ow, 3, 2, &mut p, &mut pa);
        assert_bits_eq(&d, &p, "max_pool");
        assert_eq!(da, pa, "max_pool argmax");

        avg_pool_fmap(&fm, 7, oh, ow, 3, 2, 1.0 / 9.0, &mut d);
        avg_pool_fmap_impl(&fm, 7, oh, ow, 3, 2, 1.0 / 9.0, &mut p);
        assert_bits_eq(&d, &p, "avg_pool");
    }

    #[test]
    fn relu_mask_matches_separate_ops() {
        let a = [-2.0, -0.0, 0.0, 3.5, f32::NAN];
        let mut out = [9.0; 5];
        let mut mask = [9.0; 5];
        relu_mask(&a, &mut out, &mut mask);
        for i in 0..a.len() {
            assert_eq!(out[i].to_bits(), a[i].max(0.0).to_bits());
            assert_eq!(mask[i], if a[i] > 0.0 { 1.0 } else { 0.0 });
        }
    }
}
