//! Deterministic, forkable random number generation.
//!
//! Every stochastic component in the RustFI stack (weight init, synthetic
//! data, fault-site sampling, perturbation values) draws from a [`SeededRng`]
//! so that experiments are reproducible bit-for-bit regardless of thread
//! count: parallel units each receive a *forked* stream derived from the
//! parent seed rather than sharing one generator.

/// A deterministic RNG with explicit seeding and cheap stream forking.
///
/// The generator is a self-contained xoshiro256++ (no external dependency),
/// seeded through a SplitMix64 expansion of the 64-bit seed, so the stack
/// builds and reproduces results on fully offline machines.
///
/// # Example
///
/// ```
/// use rustfi_tensor::SeededRng;
///
/// let mut a = SeededRng::new(1);
/// let mut b = SeededRng::new(1);
/// assert_eq!(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
///
/// // Forked streams are decorrelated but reproducible.
/// let mut fork = a.fork(7);
/// let x = fork.normal(0.0, 1.0);
/// assert_eq!(SeededRng::new(1).fork(7).normal(0.0, 1.0), x);
/// ```
#[derive(Debug, Clone)]
pub struct SeededRng {
    state: [u64; 4],
    seed: u64,
}

/// SplitMix64 step; used to derive fork seeds with good avalanche behaviour.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl SeededRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        // Expand the seed with SplitMix64, the recommended xoshiro seeding.
        let mut sm = seed;
        let mut next = || {
            sm = splitmix64(sm);
            sm
        };
        let state = [next(), next(), next(), next()];
        Self { state, seed }
    }

    /// xoshiro256++ step.
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` (53 random mantissa bits).
    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// The seed this generator was created from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives an independent stream identified by `stream`.
    ///
    /// Forking depends only on `(seed, stream)`, not on how many samples have
    /// been drawn from `self`, which is what makes parallel campaigns
    /// deterministic.
    pub fn fork(&self, stream: u64) -> SeededRng {
        SeededRng::new(splitmix64(
            self.seed ^ splitmix64(stream.wrapping_add(0xA5A5_5A5A)),
        ))
    }

    /// Uniform sample in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or either bound is non-finite.
    pub fn uniform(&mut self, lo: f32, hi: f32) -> f32 {
        assert!(
            lo < hi && lo.is_finite() && hi.is_finite(),
            "invalid uniform bounds [{lo}, {hi})"
        );
        let v = (lo as f64 + (hi as f64 - lo as f64) * self.unit_f64()) as f32;
        // f32 rounding can land exactly on `hi`; keep the half-open contract.
        if v >= hi {
            hi.next_down().max(lo)
        } else {
            v.max(lo)
        }
    }

    /// Standard normal sample via Box–Muller.
    pub fn standard_normal(&mut self) -> f32 {
        // Box–Muller: u1 in (0,1] avoids ln(0).
        let u1: f64 = 1.0 - self.unit_f64();
        let u2: f64 = self.unit_f64();
        ((-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()) as f32
    }

    /// Normal sample `N(mean, std^2)`.
    pub fn normal(&mut self, mean: f32, std: f32) -> f32 {
        mean + std * self.standard_normal()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "cannot sample below 0");
        // Lemire's multiply-shift: maps a 64-bit draw onto [0, n) without
        // modulo bias worth caring about at our range sizes.
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }

    /// Uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "invalid integer range [{lo}, {hi})");
        lo + self.below(hi - lo)
    }

    /// Bernoulli trial with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit_f64() < p
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i + 1);
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SeededRng::new(99);
        let mut b = SeededRng::new(99);
        for _ in 0..32 {
            assert_eq!(a.uniform(-1.0, 1.0), b.uniform(-1.0, 1.0));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SeededRng::new(1);
        let mut b = SeededRng::new(2);
        let va: Vec<f32> = (0..8).map(|_| a.uniform(0.0, 1.0)).collect();
        let vb: Vec<f32> = (0..8).map(|_| b.uniform(0.0, 1.0)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn fork_is_independent_of_draw_position() {
        let mut a = SeededRng::new(5);
        let _ = a.uniform(0.0, 1.0); // advance parent
        let mut f1 = a.fork(3);
        let mut f2 = SeededRng::new(5).fork(3);
        assert_eq!(f1.normal(0.0, 1.0), f2.normal(0.0, 1.0));
    }

    #[test]
    fn forks_with_different_streams_differ() {
        let root = SeededRng::new(5);
        let mut f1 = root.fork(0);
        let mut f2 = root.fork(1);
        assert_ne!(f1.uniform(0.0, 1.0), f2.uniform(0.0, 1.0));
    }

    #[test]
    fn normal_moments_are_plausible() {
        let mut rng = SeededRng::new(11);
        let n = 20_000;
        let samples: Vec<f32> = (0..n).map(|_| rng.normal(2.0, 3.0)).collect();
        let mean = samples.iter().sum::<f32>() / n as f32;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f32>() / n as f32;
        assert!((mean - 2.0).abs() < 0.1, "mean {mean}");
        assert!((var - 9.0).abs() < 0.5, "var {var}");
    }

    #[test]
    fn below_and_range_stay_in_bounds() {
        let mut rng = SeededRng::new(3);
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
            let v = rng.range(3, 9);
            assert!((3..9).contains(&v));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SeededRng::new(8);
        let mut v: Vec<usize> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..50).collect::<Vec<_>>(),
            "50-element shuffle left input unchanged"
        );
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SeededRng::new(4);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }
}
