//! Thread-local tensor buffer recycling for allocation-free forward passes.
//!
//! Steady-state perturbation campaigns run the same network shape thousands
//! of times per second; with a fresh `Vec<f32>` behind every activation the
//! hot loop is dominated by allocator traffic rather than arithmetic. This
//! module keeps a per-thread free list of retired tensor buffers, bucketed
//! by exact element count, so the next forward pass of the same shape reuses
//! storage instead of hitting the heap.
//!
//! The pool is *opt-in per thread*: the budget defaults to 0 bytes, which
//! disables recycling entirely — [`Tensor::from_pool`] then allocates fresh
//! and [`Tensor::into_pool`] just drops, reproducing the unpooled behavior
//! bit-for-bit and allocation-for-allocation. Campaign workers enable it by
//! installing a [`budget_scope`] for the duration of their trial loop.
//!
//! Two invariants make pooling unobservable in results:
//!
//! - [`Tensor::from_pool`] hands back buffers with **unspecified contents**
//!   (stale values from a previous life). Every producer that draws from the
//!   pool fully overwrites its output; accumulators use
//!   [`Tensor::from_pool_zeroed`].
//! - Bucketing is by exact element count, so a recycled buffer never changes
//!   length — only its shape header is rewritten in place.

use crate::shape;
use crate::tensor::Tensor;
use std::cell::RefCell;
use std::collections::BTreeMap;

/// Cumulative per-thread recycling counters (see [`stats`]/[`take_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// `from_pool` requests satisfied from the free list.
    pub hits: u64,
    /// `from_pool` requests that fell back to a fresh allocation (only
    /// counted while the pool is enabled).
    pub misses: u64,
    /// Total bytes handed out from recycled buffers.
    pub bytes_recycled: u64,
}

struct Pool {
    /// Maximum bytes of retired buffers held; 0 disables recycling.
    budget_bytes: usize,
    /// Bytes currently parked on the free lists.
    held_bytes: usize,
    /// Free lists bucketed by exact element count.
    buckets: BTreeMap<usize, Vec<Tensor>>,
    stats: PoolStats,
}

impl Pool {
    const fn new() -> Self {
        Self {
            budget_bytes: 0,
            held_bytes: 0,
            buckets: BTreeMap::new(),
            stats: PoolStats {
                hits: 0,
                misses: 0,
                bytes_recycled: 0,
            },
        }
    }
}

thread_local! {
    static POOL: RefCell<Pool> = const { RefCell::new(Pool::new()) };
}

/// Sets this thread's pool budget in bytes (0 disables recycling) and
/// returns the previous budget. Shrinking the budget does not evict buffers
/// already held; [`clear`] does.
pub fn set_budget_bytes(bytes: usize) -> usize {
    POOL.with(|p| {
        let mut p = p.borrow_mut();
        std::mem::replace(&mut p.budget_bytes, bytes)
    })
}

/// This thread's current pool budget in bytes.
pub fn budget_bytes() -> usize {
    POOL.with(|p| p.borrow().budget_bytes)
}

/// Drops every buffer on this thread's free lists, returning the memory to
/// the allocator. The budget and cumulative stats are unchanged.
pub fn clear() {
    POOL.with(|p| {
        let mut p = p.borrow_mut();
        p.buckets.clear();
        p.held_bytes = 0;
    })
}

/// This thread's cumulative recycling counters.
pub fn stats() -> PoolStats {
    POOL.with(|p| p.borrow().stats)
}

/// Returns this thread's counters and resets them to zero — the read-delta
/// primitive campaign trials use to attribute recycling per trial.
pub fn take_stats() -> PoolStats {
    POOL.with(|p| std::mem::take(&mut p.borrow_mut().stats))
}

/// Enables the pool on this thread for the guard's lifetime.
///
/// On drop the previous budget is restored and the free lists are released.
/// Campaign workers wrap their trial loop in one of these so test threads
/// and library users see no behavior change outside campaigns.
pub fn budget_scope(bytes: usize) -> BudgetScope {
    BudgetScope {
        prev_budget: set_budget_bytes(bytes),
    }
}

/// Guard returned by [`budget_scope`].
pub struct BudgetScope {
    prev_budget: usize,
}

impl Drop for BudgetScope {
    fn drop(&mut self) {
        set_budget_bytes(self.prev_budget);
        clear();
    }
}

/// Reuses `slot`'s tensor when its shape already matches `dims`, otherwise
/// retires the old tensor to the pool and draws a fresh one. The returned
/// buffer has **unspecified contents**; callers must fully overwrite it.
///
/// This is the cache-slot primitive layers use for backward state (ReLU
/// masks, batch-norm `x_hat`, cached inputs): after the first forward of a
/// given shape, every subsequent forward rewrites the same buffer in place.
pub fn reuse_slot<'a>(slot: &'a mut Option<Tensor>, dims: &[usize]) -> &'a mut Tensor {
    let matches = slot.as_ref().is_some_and(|t| t.dims() == dims);
    if !matches {
        if let Some(old) = slot.take() {
            old.into_pool();
        }
        *slot = Some(Tensor::from_pool(dims));
    }
    slot.as_mut().expect("slot was just filled")
}

impl Tensor {
    /// Draws a tensor of the given shape from this thread's pool, falling
    /// back to a fresh allocation on a miss (or when the pool is disabled).
    ///
    /// The contents are **unspecified** — a recycled buffer carries stale
    /// values from its previous life. Use [`Tensor::from_pool_zeroed`] when
    /// the consumer accumulates instead of overwriting.
    pub fn from_pool(shape: &[usize]) -> Tensor {
        let n = shape::numel(shape);
        let recycled = POOL.with(|p| {
            let mut p = p.borrow_mut();
            if p.budget_bytes == 0 || n == 0 {
                return None;
            }
            let hit = p.buckets.get_mut(&n).and_then(Vec::pop);
            match hit {
                Some(mut t) => {
                    let bytes = n * std::mem::size_of::<f32>();
                    p.held_bytes -= bytes;
                    p.stats.hits += 1;
                    p.stats.bytes_recycled += bytes as u64;
                    t.set_shape_in_place(shape);
                    Some(t)
                }
                None => {
                    p.stats.misses += 1;
                    None
                }
            }
        });
        recycled.unwrap_or_else(|| Tensor::zeros(shape))
    }

    /// [`Tensor::from_pool`] with the contents zeroed — for accumulation
    /// targets that add into their output rather than overwriting it.
    pub fn from_pool_zeroed(shape: &[usize]) -> Tensor {
        let mut t = Tensor::from_pool(shape);
        t.data_mut().fill(0.0);
        t
    }

    /// Retires this tensor's buffer to the thread's pool for reuse by a
    /// later [`Tensor::from_pool`] of the same element count. Drops the
    /// buffer instead when the pool is disabled, the tensor is empty, or
    /// parking it would exceed the budget.
    pub fn into_pool(self) {
        POOL.with(|p| {
            let mut p = p.borrow_mut();
            let bytes = self.len() * std::mem::size_of::<f32>();
            if p.budget_bytes == 0 || self.is_empty() || p.held_bytes + bytes > p.budget_bytes {
                return;
            }
            p.held_bytes += bytes;
            p.buckets.entry(self.len()).or_default().push(self);
        })
    }

    /// A pool-backed deep copy: same contents as `clone()`, but the storage
    /// comes from [`Tensor::from_pool`].
    pub fn pooled_copy(&self) -> Tensor {
        let mut out = Tensor::from_pool(self.dims());
        out.data_mut().copy_from_slice(self.data());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_pool_never_recycles() {
        assert_eq!(budget_bytes(), 0, "pool starts disabled");
        let t = Tensor::from_fn(&[4], |i| i as f32);
        t.into_pool();
        let fresh = Tensor::from_pool(&[4]);
        assert_eq!(fresh.data(), &[0.0; 4], "disabled pool allocates zeros");
        assert_eq!(
            stats(),
            PoolStats::default(),
            "disabled pool counts nothing"
        );
    }

    #[test]
    fn recycles_exact_size_classes_within_budget() {
        let _scope = budget_scope(1 << 20);
        take_stats();
        let t = Tensor::from_fn(&[2, 3], |i| 1.0 + i as f32);
        t.into_pool();
        // Different element count: miss.
        let other = Tensor::from_pool(&[7]);
        assert_eq!(other.len(), 7);
        // Same element count, different shape: hit, shape rewritten, stale
        // contents preserved (callers must overwrite).
        let hit = Tensor::from_pool(&[3, 2]);
        assert_eq!(hit.dims(), &[3, 2]);
        assert_eq!(hit.data(), &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let s = take_stats();
        assert_eq!((s.hits, s.misses), (1, 1));
        assert_eq!(s.bytes_recycled, 24);
    }

    #[test]
    fn from_pool_zeroed_clears_stale_contents() {
        let _scope = budget_scope(1 << 20);
        Tensor::ones(&[8]).into_pool();
        let z = Tensor::from_pool_zeroed(&[8]);
        assert!(z.data().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn budget_caps_held_bytes() {
        let _scope = budget_scope(16); // room for one 4-element tensor
        Tensor::ones(&[4]).into_pool();
        Tensor::full(&[4], 2.0).into_pool(); // over budget: dropped
        take_stats();
        let a = Tensor::from_pool(&[4]);
        assert_eq!(a.data(), &[1.0; 4]);
        let b = Tensor::from_pool(&[4]);
        assert_eq!(b.data(), &[0.0; 4], "second draw is a fresh allocation");
        let s = take_stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn budget_scope_restores_and_clears() {
        {
            let _scope = budget_scope(1 << 20);
            assert_eq!(budget_bytes(), 1 << 20);
            Tensor::ones(&[4]).into_pool();
        }
        assert_eq!(budget_bytes(), 0, "scope restores the previous budget");
        let _scope = budget_scope(1 << 20);
        let t = Tensor::from_pool(&[4]);
        assert_eq!(t.data(), &[0.0; 4], "scope exit cleared the free lists");
    }

    #[test]
    fn reuse_slot_rewrites_in_place_on_shape_match() {
        let mut slot: Option<Tensor> = None;
        let t = reuse_slot(&mut slot, &[2, 2]);
        t.data_mut().copy_from_slice(&[1.0, 2.0, 3.0, 4.0]);
        let again = reuse_slot(&mut slot, &[2, 2]);
        assert_eq!(again.data(), &[1.0, 2.0, 3.0, 4.0], "same buffer reused");
        let resized = reuse_slot(&mut slot, &[3]);
        assert_eq!(resized.dims(), &[3]);
    }

    #[test]
    fn pooled_copy_equals_clone() {
        let t = Tensor::from_fn(&[2, 5], |i| (i as f32).sin());
        assert_eq!(t.pooled_copy(), t);
    }
}
