//! # rustfi-tensor
//!
//! A minimal, dependency-light CPU tensor library used as the numerical
//! substrate of the RustFI stack (a Rust reproduction of *PyTorchFI*,
//! DSN 2020).
//!
//! Everything is `f32`, row-major, and contiguous. The library provides the
//! operations a small convolutional-network framework needs:
//!
//! - [`Tensor`]: an n-dimensional array with shape bookkeeping,
//! - elementwise and scalar arithmetic ([`ops`]),
//! - matrix multiplication ([`linalg`]),
//! - 2-D convolution with stride/padding/groups and its gradients ([`conv`]),
//! - max/avg pooling and their gradients ([`pool`]),
//! - IEEE-754 bit manipulation used by fault models ([`bits`]),
//! - a deterministic, forkable RNG ([`rng`]),
//! - scoped-thread data parallelism helpers ([`parallel`]),
//! - runtime-dispatched AVX2 slice kernels for the elementwise tail
//!   ([`kernels`]),
//! - symmetric INT8 quantization primitives, an AVX2 integer GEMM, and
//!   stored-`i8` tensors with quantized conv/linear kernels ([`qkernels`],
//!   [`qtensor`]),
//! - a thread-local buffer recycling pool for allocation-free steady-state
//!   forward passes ([`tpool`]).
//!
//! # Example
//!
//! ```
//! use rustfi_tensor::Tensor;
//!
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
//! let b = Tensor::full(&[2, 2], 0.5);
//! let c = a.add(&b);
//! assert_eq!(c.at(&[1, 1]), 4.5);
//! ```

pub mod bits;
pub mod conv;
pub mod kernels;
pub mod linalg;
pub mod opcount;
pub mod ops;
pub mod pack;
pub mod parallel;
pub mod pool;
pub mod qkernels;
pub mod qtensor;
pub mod resize;
pub mod rng;
mod shape;
mod tensor;
pub mod tpool;

pub use conv::{conv2d, conv2d_backward, conv2d_planned, Conv2dGrads, ConvSpec, Im2colPlan};
pub use linalg::{matmul, matmul_into, transpose_into};
pub use pack::{
    matmul_packed_a, matmul_packed_b, Act, BnFoldView, Epilogue, GatherPlan, PackedA, PackedB,
    PackedI16,
};
pub use pool::{
    avg_pool2d, avg_pool2d_backward, max_pool2d, max_pool2d_backward, max_pool2d_into, PoolSpec,
};
pub use qkernels::{matmul_i8_nt, matmul_i8_nt_wa, matmul_i8_nt_wb};
pub use qtensor::{conv2d_q, conv2d_q_planned, linear_q, linear_q_planned, Im2rowPlan, QTensor};
pub use resize::{resize_map, upsample_nearest, zero_pad2d};
pub use rng::SeededRng;
pub use shape::ShapeError;
pub use tensor::Tensor;
