//! The [`Tensor`] type: a contiguous, row-major, `f32` n-dimensional array.

use crate::rng::SeededRng;
use crate::shape::{self, ShapeError};
use std::fmt;

/// A contiguous, row-major `f32` n-dimensional array.
///
/// `Tensor` is the single numeric container used throughout the RustFI stack:
/// activations, weights, gradients, images and heatmaps are all `Tensor`s.
/// Convolutional data uses the `NCHW` layout (batch, channel, height, width).
///
/// # Example
///
/// ```
/// use rustfi_tensor::Tensor;
///
/// let t = Tensor::zeros(&[1, 3, 4, 4]);
/// assert_eq!(t.dims(), &[1, 3, 4, 4]);
/// assert_eq!(t.len(), 48);
/// ```
#[derive(Clone, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor from raw data with the given shape.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not equal the product of `shape`.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Self {
        assert_eq!(
            data.len(),
            shape::numel(shape),
            "data length {} does not match shape {:?} ({} elements)",
            data.len(),
            shape,
            shape::numel(shape)
        );
        Self {
            shape: shape.to_vec(),
            data,
        }
    }

    /// Creates a tensor filled with zeros.
    pub fn zeros(shape: &[usize]) -> Self {
        Self::full(shape, 0.0)
    }

    /// Creates a tensor filled with ones.
    pub fn ones(shape: &[usize]) -> Self {
        Self::full(shape, 1.0)
    }

    /// Creates a tensor filled with `value`.
    pub fn full(shape: &[usize], value: f32) -> Self {
        Self {
            shape: shape.to_vec(),
            data: vec![value; shape::numel(shape)],
        }
    }

    /// Creates a tensor by evaluating `f` at each flat index.
    pub fn from_fn(shape: &[usize], mut f: impl FnMut(usize) -> f32) -> Self {
        let n = shape::numel(shape);
        let mut data = Vec::with_capacity(n);
        for i in 0..n {
            data.push(f(i));
        }
        Self::from_vec(data, shape)
    }

    /// Creates a tensor with i.i.d. uniform samples in `[lo, hi)`.
    pub fn rand_uniform(shape: &[usize], lo: f32, hi: f32, rng: &mut SeededRng) -> Self {
        Self::from_fn(shape, |_| rng.uniform(lo, hi))
    }

    /// Creates a tensor with i.i.d. normal samples `N(mean, std^2)`.
    pub fn rand_normal(shape: &[usize], mean: f32, std: f32, rng: &mut SeededRng) -> Self {
        Self::from_fn(shape, |_| rng.normal(mean, std))
    }

    /// The tensor's shape.
    pub fn dims(&self) -> &[usize] {
        &self.shape
    }

    /// Number of axes.
    pub fn ndim(&self) -> usize {
        self.shape.len()
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Rewrites the shape header in place without touching storage. Used by
    /// the recycling pool, which buckets buffers by exact element count.
    ///
    /// # Panics
    ///
    /// Panics if the new shape's element count differs from the current one.
    pub(crate) fn set_shape_in_place(&mut self, shape: &[usize]) {
        assert_eq!(
            shape::numel(shape),
            self.data.len(),
            "cannot relabel {:?} ({} elements) as {:?}",
            self.shape,
            self.data.len(),
            shape
        );
        self.shape.clear();
        self.shape.extend_from_slice(shape);
    }

    /// Immutable view of the underlying storage (row-major).
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying storage (row-major).
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its storage.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at a multi-index.
    ///
    /// # Panics
    ///
    /// Panics if the index rank or bounds are invalid.
    pub fn at(&self, index: &[usize]) -> f32 {
        self.data[shape::offset(&self.shape, index)]
    }

    /// Sets the element at a multi-index.
    ///
    /// # Panics
    ///
    /// Panics if the index rank or bounds are invalid.
    pub fn set(&mut self, index: &[usize], value: f32) {
        let off = shape::offset(&self.shape, index);
        self.data[off] = value;
    }

    /// Flat row-major offset of a multi-index.
    pub fn offset_of(&self, index: &[usize]) -> usize {
        shape::offset(&self.shape, index)
    }

    /// Row-major strides of the tensor's shape.
    pub fn strides(&self) -> Vec<usize> {
        shape::strides(&self.shape)
    }

    /// Returns a reshaped copy sharing no storage with `self`.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the new shape has a different element count.
    pub fn reshaped(&self, shape: &[usize]) -> Result<Tensor, ShapeError> {
        if shape::numel(shape) != self.len() {
            return Err(ShapeError::new(format!(
                "cannot reshape {:?} ({} elements) into {:?} ({} elements)",
                self.shape,
                self.len(),
                shape,
                shape::numel(shape)
            )));
        }
        Ok(Tensor::from_vec(self.data.clone(), shape))
    }

    /// Reshapes in place.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the new shape has a different element count.
    pub fn reshape(&mut self, shape: &[usize]) -> Result<(), ShapeError> {
        if shape::numel(shape) != self.len() {
            return Err(ShapeError::new(format!(
                "cannot reshape {:?} ({} elements) into {:?} ({} elements)",
                self.shape,
                self.len(),
                shape,
                shape::numel(shape)
            )));
        }
        self.shape = shape.to_vec();
        Ok(())
    }

    /// Interprets the tensor as `NCHW` and returns `(n, c, h, w)`.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 4.
    pub fn dims4(&self) -> (usize, usize, usize, usize) {
        assert_eq!(
            self.ndim(),
            4,
            "expected a rank-4 (NCHW) tensor, got shape {:?}",
            self.shape
        );
        (self.shape[0], self.shape[1], self.shape[2], self.shape[3])
    }

    /// Interprets the tensor as a matrix and returns `(rows, cols)`.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2.
    pub fn dims2(&self) -> (usize, usize) {
        assert_eq!(
            self.ndim(),
            2,
            "expected a rank-2 tensor, got shape {:?}",
            self.shape
        );
        (self.shape[0], self.shape[1])
    }

    /// Immutable slice of one feature map `(n, c)` of an `NCHW` tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 4 or the indices are out of range.
    pub fn fmap(&self, n: usize, c: usize) -> &[f32] {
        let (bn, bc, h, w) = self.dims4();
        assert!(
            n < bn && c < bc,
            "fmap ({n},{c}) out of range for {:?}",
            self.shape
        );
        let hw = h * w;
        let start = (n * bc + c) * hw;
        &self.data[start..start + hw]
    }

    /// Mutable slice of one feature map `(n, c)` of an `NCHW` tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 4 or the indices are out of range.
    pub fn fmap_mut(&mut self, n: usize, c: usize) -> &mut [f32] {
        let (bn, bc, h, w) = self.dims4();
        assert!(
            n < bn && c < bc,
            "fmap ({n},{c}) out of range for {:?}",
            self.shape
        );
        let hw = h * w;
        let start = (n * bc + c) * hw;
        &mut self.data[start..start + hw]
    }

    /// Copies batch element `n` of an `NCHW` tensor into a `1CHW` tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 4 or `n` is out of range.
    pub fn select_batch(&self, n: usize) -> Tensor {
        let (bn, c, h, w) = self.dims4();
        assert!(n < bn, "batch index {n} out of range for {:?}", self.shape);
        let stride = c * h * w;
        let mut out = Tensor::from_pool(&[1, c, h, w]);
        out.data_mut()
            .copy_from_slice(&self.data[n * stride..(n + 1) * stride]);
        out
    }

    /// Broadcasts a batch-1 tensor into `n` identical batch elements along
    /// the leading axis (`[1, ...] -> [n, ...]`).
    ///
    /// This is how fused campaign trials turn one cached golden activation
    /// (or input image) into a batch whose slices are then perturbed
    /// independently.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is rank 0, its leading dimension is not 1, or
    /// `n` is zero.
    pub fn repeat_batch(&self, n: usize) -> Tensor {
        assert!(n > 0, "cannot broadcast to an empty batch");
        assert!(
            self.ndim() >= 1 && self.shape[0] == 1,
            "repeat_batch expects a batch-1 tensor, got shape {:?}",
            self.shape
        );
        let mut shape = self.shape.clone();
        shape[0] = n;
        let mut out = Tensor::from_pool(&shape);
        let stride = self.len();
        for b in 0..n {
            out.data_mut()[b * stride..(b + 1) * stride].copy_from_slice(&self.data);
        }
        out
    }

    /// Contiguous per-sample slices along the leading (batch) axis.
    ///
    /// Rank-0/1 tensors are treated as a single sample; rank ≥ 2 tensors
    /// yield one slice per leading-axis element. Used by per-sample guard
    /// scans and per-slice injection, where one fused trial's values must be
    /// judged independently of its batch siblings.
    pub fn sample_slices(&self) -> impl Iterator<Item = &[f32]> {
        let n = if self.ndim() >= 2 { self.shape[0] } else { 1 };
        let stride = self.len().checked_div(n).unwrap_or(0);
        (0..n).map(move |b| &self.data[b * stride..(b + 1) * stride])
    }

    /// Stacks `1CHW` tensors along the batch axis.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty or shapes disagree.
    pub fn stack_batch(items: &[Tensor]) -> Tensor {
        assert!(!items.is_empty(), "cannot stack an empty list of tensors");
        let (_, c, h, w) = items[0].dims4();
        let mut data = Vec::with_capacity(items.len() * c * h * w);
        for item in items {
            let (n, ic, ih, iw) = item.dims4();
            assert_eq!(n, 1, "stack_batch expects batch-1 tensors");
            assert_eq!(
                (ic, ih, iw),
                (c, h, w),
                "stack_batch shape mismatch: {:?} vs {:?}",
                item.dims(),
                items[0].dims()
            );
            data.extend_from_slice(item.data());
        }
        Tensor::from_vec(data, &[items.len(), c, h, w])
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{:?}", self.shape)?;
        if self.len() <= 16 {
            write!(f, " {:?}", self.data)
        } else {
            write!(
                f,
                " [{:.4}, {:.4}, ... {:.4}] ({} elements)",
                self.data[0],
                self.data[1],
                self.data[self.len() - 1],
                self.len()
            )
        }
    }
}

impl Default for Tensor {
    /// An empty rank-1 tensor.
    fn default() -> Self {
        Tensor::from_vec(Vec::new(), &[0])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_roundtrips() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        assert_eq!(t.dims(), &[2, 3]);
        assert_eq!(t.at(&[1, 2]), 6.0);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_rejects_bad_length() {
        Tensor::from_vec(vec![1.0; 5], &[2, 3]);
    }

    #[test]
    fn zeros_ones_full() {
        assert!(Tensor::zeros(&[3]).data().iter().all(|&x| x == 0.0));
        assert!(Tensor::ones(&[3]).data().iter().all(|&x| x == 1.0));
        assert!(Tensor::full(&[3], 7.0).data().iter().all(|&x| x == 7.0));
    }

    #[test]
    fn set_and_at_agree() {
        let mut t = Tensor::zeros(&[2, 2, 2]);
        t.set(&[1, 0, 1], 9.0);
        assert_eq!(t.at(&[1, 0, 1]), 9.0);
        assert_eq!(t.data()[t.offset_of(&[1, 0, 1])], 9.0);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_fn(&[2, 6], |i| i as f32);
        let r = t.reshaped(&[3, 4]).unwrap();
        assert_eq!(r.dims(), &[3, 4]);
        assert_eq!(r.data(), t.data());
    }

    #[test]
    fn reshape_rejects_bad_count() {
        let t = Tensor::zeros(&[2, 3]);
        assert!(t.reshaped(&[4, 2]).is_err());
        let mut t = t;
        assert!(t.reshape(&[7]).is_err());
        // Shape unchanged after failed reshape.
        assert_eq!(t.dims(), &[2, 3]);
    }

    #[test]
    fn repeat_batch_broadcasts_and_sample_slices_invert() {
        let t = Tensor::from_fn(&[1, 2, 2, 2], |i| i as f32);
        let b = t.repeat_batch(3);
        assert_eq!(b.dims(), &[3, 2, 2, 2]);
        let slices: Vec<&[f32]> = b.sample_slices().collect();
        assert_eq!(slices.len(), 3);
        for s in &slices {
            assert_eq!(*s, t.data(), "each slice is the original sample");
        }
        // Rank-1 tensors are one sample.
        let v = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        assert_eq!(v.sample_slices().count(), 1);
        assert_eq!(v.sample_slices().next().unwrap(), v.data());
    }

    #[test]
    #[should_panic(expected = "batch-1")]
    fn repeat_batch_rejects_multi_batch_input() {
        Tensor::zeros(&[2, 3]).repeat_batch(2);
    }

    #[test]
    fn fmap_views_are_contiguous() {
        let t = Tensor::from_fn(&[2, 3, 2, 2], |i| i as f32);
        let fm = t.fmap(1, 2);
        assert_eq!(fm.len(), 4);
        assert_eq!(fm[0], t.at(&[1, 2, 0, 0]));
        assert_eq!(fm[3], t.at(&[1, 2, 1, 1]));
    }

    #[test]
    fn fmap_mut_writes_through() {
        let mut t = Tensor::zeros(&[1, 2, 2, 2]);
        t.fmap_mut(0, 1)[3] = 5.0;
        assert_eq!(t.at(&[0, 1, 1, 1]), 5.0);
    }

    #[test]
    fn select_and_stack_batch_roundtrip() {
        let t = Tensor::from_fn(&[3, 2, 2, 2], |i| i as f32);
        let parts: Vec<Tensor> = (0..3).map(|n| t.select_batch(n)).collect();
        let back = Tensor::stack_batch(&parts);
        assert_eq!(back, t);
    }

    #[test]
    fn rand_tensors_are_deterministic_per_seed() {
        let mut a = SeededRng::new(42);
        let mut b = SeededRng::new(42);
        let ta = Tensor::rand_normal(&[16], 0.0, 1.0, &mut a);
        let tb = Tensor::rand_normal(&[16], 0.0, 1.0, &mut b);
        assert_eq!(ta, tb);
        let mut c = SeededRng::new(43);
        let tc = Tensor::rand_normal(&[16], 0.0, 1.0, &mut c);
        assert_ne!(ta, tc);
    }

    #[test]
    fn rand_uniform_respects_bounds() {
        let mut rng = SeededRng::new(7);
        let t = Tensor::rand_uniform(&[1000], -2.0, 3.0, &mut rng);
        assert!(t.data().iter().all(|&x| (-2.0..3.0).contains(&x)));
    }

    #[test]
    fn debug_is_never_empty() {
        let small = format!("{:?}", Tensor::zeros(&[2]));
        assert!(small.contains("Tensor[2]"));
        let large = format!("{:?}", Tensor::zeros(&[100]));
        assert!(large.contains("100 elements"));
    }
}
