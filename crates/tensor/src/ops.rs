//! Elementwise and reduction operations on [`Tensor`].
//!
//! The elementwise producers draw their outputs from the thread-local
//! recycling pool (see [`crate::tpool`]) and run on the runtime-dispatched
//! slice kernels in [`crate::kernels`], so steady-state forward passes are
//! allocation-free and vectorized without any caller-visible API change.

use crate::kernels;
use crate::opcount;
use crate::tensor::Tensor;

impl Tensor {
    fn assert_same_shape(&self, other: &Tensor) {
        assert_eq!(
            self.dims(),
            other.dims(),
            "elementwise op on mismatched shapes {:?} vs {:?}",
            self.dims(),
            other.dims()
        );
    }

    /// Elementwise sum. Shapes must match exactly (no broadcasting).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.assert_same_shape(other);
        opcount::count_elementwise();
        let mut out = Tensor::from_pool(self.dims());
        kernels::add(self.data(), other.data(), out.data_mut());
        out
    }

    /// Elementwise difference.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.assert_same_shape(other);
        opcount::count_elementwise();
        let mut out = Tensor::from_pool(self.dims());
        kernels::sub(self.data(), other.data(), out.data_mut());
        out
    }

    /// Elementwise (Hadamard) product.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.assert_same_shape(other);
        opcount::count_elementwise();
        let mut out = Tensor::from_pool(self.dims());
        kernels::mul(self.data(), other.data(), out.data_mut());
        out
    }

    /// Adds `other` into `self` in place.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Tensor) {
        self.assert_same_shape(other);
        opcount::count_elementwise();
        kernels::add_assign(self.data_mut(), other.data());
    }

    /// Adds `scale * other` into `self` in place (axpy).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_scaled(&mut self, other: &Tensor, scale: f32) {
        self.assert_same_shape(other);
        opcount::count_elementwise();
        kernels::axpy(self.data_mut(), other.data(), scale);
    }

    /// Returns `self * scalar`.
    pub fn scale(&self, scalar: f32) -> Tensor {
        opcount::count_elementwise();
        let mut out = Tensor::from_pool(self.dims());
        kernels::scale(self.data(), scalar, out.data_mut());
        out
    }

    /// Multiplies by a scalar in place.
    pub fn scale_inplace(&mut self, scalar: f32) {
        opcount::count_elementwise();
        kernels::scale_assign(self.data_mut(), scalar);
    }

    /// Returns `self + scalar` elementwise.
    pub fn add_scalar(&self, scalar: f32) -> Tensor {
        opcount::count_elementwise();
        let mut out = Tensor::from_pool(self.dims());
        kernels::add_scalar(self.data(), scalar, out.data_mut());
        out
    }

    /// Adds a `[cols]` bias vector to every row of this `[rows, cols]`
    /// tensor in place (the linear layer's bias step).
    ///
    /// # Panics
    ///
    /// Panics if `self` is not rank 2 or the column count mismatches.
    pub fn bias_add_rows(&mut self, bias: &Tensor) {
        let (_, cols) = self.dims2();
        assert_eq!(
            cols,
            bias.len(),
            "bias length {} does not match column count {cols}",
            bias.len()
        );
        opcount::count_elementwise();
        kernels::bias_add_rows(self.data_mut(), bias.data());
    }

    /// Applies `f` elementwise, returning a new (pool-backed) tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        opcount::count_elementwise();
        let mut out = Tensor::from_pool(self.dims());
        for (o, &x) in out.data_mut().iter_mut().zip(self.data()) {
            *o = f(x);
        }
        out
    }

    /// Applies `f` elementwise in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in self.data_mut() {
            *x = f(*x);
        }
    }

    /// Combines two same-shape tensors elementwise into a new (pool-backed)
    /// tensor.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn zip_map(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        self.assert_same_shape(other);
        opcount::count_elementwise();
        let mut out = Tensor::from_pool(self.dims());
        for ((o, &a), &b) in out.data_mut().iter_mut().zip(self.data()).zip(other.data()) {
            *o = f(a, b);
        }
        out
    }

    /// Combines `other` into `self` elementwise, in place.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn zip_apply(&mut self, other: &Tensor, f: impl Fn(&mut f32, f32)) {
        self.assert_same_shape(other);
        opcount::count_elementwise();
        for (a, &b) in self.data_mut().iter_mut().zip(other.data()) {
            f(a, b);
        }
    }

    /// Rectified linear unit, elementwise.
    pub fn relu(&self) -> Tensor {
        opcount::count_elementwise();
        let mut out = Tensor::from_pool(self.dims());
        kernels::relu(self.data(), out.data_mut());
        out
    }

    /// Fused ReLU forward: writes `max(x, 0)` into `out` and the backward
    /// mask (`1` where `x > 0`, else `0`) into `mask`, in one pass over
    /// recycled buffers.
    ///
    /// # Panics
    ///
    /// Panics if `out` or `mask` shapes differ from `self`.
    pub fn relu_mask_into(&self, out: &mut Tensor, mask: &mut Tensor) {
        self.assert_same_shape(out);
        self.assert_same_shape(mask);
        opcount::count_elementwise();
        kernels::relu_mask(self.data(), out.data_mut(), mask.data_mut());
    }

    /// Fused leaky-ReLU forward: `out = x > 0 ? x : slope * x`, with the
    /// backward mask (`1` or `slope`) filled in the same pass.
    ///
    /// # Panics
    ///
    /// Panics if `out` or `mask` shapes differ from `self`.
    pub fn leaky_relu_mask_into(&self, slope: f32, out: &mut Tensor, mask: &mut Tensor) {
        self.assert_same_shape(out);
        self.assert_same_shape(mask);
        opcount::count_elementwise();
        kernels::leaky_relu_mask(self.data(), slope, out.data_mut(), mask.data_mut());
    }

    /// Batch-norm inference/affine step over an `NCHW` tensor: per channel
    /// `c`, writes `x_hat = (x - mean[c]) * inv_std[c]` and
    /// `out = gamma[c] * x_hat + beta[c]`.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not rank 4, the per-channel slices are not `C`
    /// long, or `x_hat`/`out` shapes differ from `self`.
    #[allow(clippy::too_many_arguments)]
    pub fn batchnorm2d_into(
        &self,
        mean: &[f32],
        inv_std: &[f32],
        gamma: &[f32],
        beta: &[f32],
        x_hat: &mut Tensor,
        out: &mut Tensor,
    ) {
        let (n, c, _, _) = self.dims4();
        assert!(
            mean.len() == c && inv_std.len() == c && gamma.len() == c && beta.len() == c,
            "per-channel stats must have length {c}"
        );
        self.assert_same_shape(x_hat);
        self.assert_same_shape(out);
        opcount::count_norm();
        for bn in 0..n {
            for ch in 0..c {
                kernels::bn_fmap(
                    self.fmap(bn, ch),
                    mean[ch],
                    inv_std[ch],
                    gamma[ch],
                    beta[ch],
                    x_hat.fmap_mut(bn, ch),
                    out.fmap_mut(bn, ch),
                );
            }
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data().iter().sum()
    }

    /// Mean of all elements (0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.is_empty() {
            0.0
        } else {
            self.sum() / self.len() as f32
        }
    }

    /// Maximum element.
    ///
    /// # Panics
    ///
    /// Panics on an empty tensor.
    pub fn max(&self) -> f32 {
        assert!(!self.is_empty(), "max of empty tensor");
        self.data()
            .iter()
            .copied()
            .fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element.
    ///
    /// # Panics
    ///
    /// Panics on an empty tensor.
    pub fn min(&self) -> f32 {
        assert!(!self.is_empty(), "min of empty tensor");
        self.data().iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Largest absolute value (0 for an empty tensor).
    pub fn max_abs(&self) -> f32 {
        self.data().iter().fold(0.0f32, |m, &x| m.max(x.abs()))
    }

    /// Flat index of the maximum element (first on ties).
    ///
    /// # Panics
    ///
    /// Panics on an empty tensor.
    pub fn argmax(&self) -> usize {
        assert!(!self.is_empty(), "argmax of empty tensor");
        let mut best = 0;
        for (i, &x) in self.data().iter().enumerate() {
            if x > self.data()[best] {
                best = i;
            }
        }
        best
    }

    /// Squared L2 norm.
    pub fn sq_norm(&self) -> f32 {
        self.data().iter().map(|&x| x * x).sum()
    }

    /// Largest absolute value of each leading-axis (batch) sample.
    ///
    /// The per-sample counterpart of [`Tensor::max_abs`]: element `b` equals
    /// `self` restricted to batch element `b`, so relative perturbation
    /// models scale against their own sample's range even inside a fused
    /// batch.
    pub fn max_abs_batch(&self) -> Vec<f32> {
        self.sample_slices()
            .map(|s| s.iter().fold(0.0f32, |m, &x| m.max(x.abs())))
            .collect()
    }

    /// True if any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data().iter().any(|x| !x.is_finite())
    }

    /// Per-sample non-finite scan along the leading (batch) axis: element
    /// `b` is true when batch element `b` contains NaN/Inf.
    pub fn non_finite_batch(&self) -> Vec<bool> {
        self.sample_slices()
            .map(|s| s.iter().any(|x| !x.is_finite()))
            .collect()
    }

    /// Indices (flat) of the `k` largest elements, descending.
    pub fn top_k(&self, k: usize) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.len()).collect();
        idx.sort_by(|&a, &b| {
            self.data()[b]
                .partial_cmp(&self.data()[a])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        idx.truncate(k);
        idx
    }

    /// Row-wise softmax of a rank-2 tensor `[batch, classes]`.
    ///
    /// Numerically stabilized by subtracting each row's maximum.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2.
    pub fn softmax_rows(&self) -> Tensor {
        let (rows, cols) = self.dims2();
        opcount::count_elementwise();
        let mut out = Tensor::from_pool(self.dims());
        for r in 0..rows {
            kernels::softmax_row(
                &self.data()[r * cols..(r + 1) * cols],
                &mut out.data_mut()[r * cols..(r + 1) * cols],
            );
        }
        out
    }

    /// Concatenates rank-4 tensors along the channel axis.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty or `N`, `H`, `W` disagree.
    pub fn concat_channels(parts: &[Tensor]) -> Tensor {
        assert!(!parts.is_empty(), "concat of empty list");
        let (n, _, h, w) = parts[0].dims4();
        let total_c: usize = parts.iter().map(|p| p.dims4().1).sum();
        let mut out = Tensor::from_pool(&[n, total_c, h, w]);
        for bn in 0..n {
            let mut c_off = 0;
            for p in parts {
                let (pn, pc, ph, pw) = p.dims4();
                assert_eq!(
                    (pn, ph, pw),
                    (n, h, w),
                    "concat_channels mismatch: {:?} vs {:?}",
                    p.dims(),
                    parts[0].dims()
                );
                for c in 0..pc {
                    out.fmap_mut(bn, c_off + c).copy_from_slice(p.fmap(bn, c));
                }
                c_off += pc;
            }
        }
        out
    }

    /// Splits a rank-4 tensor along the channel axis into chunks of the given
    /// sizes (inverse of [`Tensor::concat_channels`]).
    ///
    /// # Panics
    ///
    /// Panics if the sizes do not sum to the channel count.
    pub fn split_channels(&self, sizes: &[usize]) -> Vec<Tensor> {
        let (n, c, h, w) = self.dims4();
        assert_eq!(
            sizes.iter().sum::<usize>(),
            c,
            "split sizes {:?} do not sum to channel count {}",
            sizes,
            c
        );
        let mut out = Vec::with_capacity(sizes.len());
        let mut c_off = 0;
        for &sz in sizes {
            let mut part = Tensor::from_pool(&[n, sz, h, w]);
            for bn in 0..n {
                for cc in 0..sz {
                    part.fmap_mut(bn, cc)
                        .copy_from_slice(self.fmap(bn, c_off + cc));
                }
            }
            out.push(part);
            c_off += sz;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(data: &[f32], shape: &[usize]) -> Tensor {
        Tensor::from_vec(data.to_vec(), shape)
    }

    #[test]
    fn add_sub_mul() {
        let a = t(&[1.0, 2.0, 3.0], &[3]);
        let b = t(&[4.0, 5.0, 6.0], &[3]);
        assert_eq!(a.add(&b).data(), &[5.0, 7.0, 9.0]);
        assert_eq!(b.sub(&a).data(), &[3.0, 3.0, 3.0]);
        assert_eq!(a.mul(&b).data(), &[4.0, 10.0, 18.0]);
    }

    #[test]
    #[should_panic(expected = "mismatched shapes")]
    fn add_rejects_shape_mismatch() {
        t(&[1.0], &[1]).add(&t(&[1.0, 2.0], &[2]));
    }

    #[test]
    fn axpy_and_inplace() {
        let mut a = t(&[1.0, 1.0], &[2]);
        a.add_scaled(&t(&[2.0, 4.0], &[2]), 0.5);
        assert_eq!(a.data(), &[2.0, 3.0]);
        a.scale_inplace(2.0);
        assert_eq!(a.data(), &[4.0, 6.0]);
        a.add_assign(&t(&[1.0, 1.0], &[2]));
        assert_eq!(a.data(), &[5.0, 7.0]);
    }

    #[test]
    fn per_sample_reductions_split_by_leading_axis() {
        let a = t(&[1.0, -4.0, 2.0, 0.5, f32::NAN, 1.0], &[3, 2]);
        // NaN is skipped by the f32::max fold, as in `max_abs`.
        assert_eq!(a.max_abs_batch(), vec![4.0, 2.0, 1.0]);
        assert_eq!(a.non_finite_batch(), vec![false, false, true]);
        // Batch-1: per-sample equals whole-tensor.
        let b = t(&[1.0, -4.0], &[1, 2]);
        assert_eq!(b.max_abs_batch(), vec![b.max_abs()]);
    }

    #[test]
    fn relu_clamps_negatives() {
        let a = t(&[-1.0, 0.0, 2.0], &[3]);
        assert_eq!(a.relu().data(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn reductions() {
        let a = t(&[-3.0, 1.0, 2.0], &[3]);
        assert_eq!(a.sum(), 0.0);
        assert_eq!(a.mean(), 0.0);
        assert_eq!(a.max(), 2.0);
        assert_eq!(a.min(), -3.0);
        assert_eq!(a.max_abs(), 3.0);
        assert_eq!(a.argmax(), 2);
        assert_eq!(a.sq_norm(), 14.0);
    }

    #[test]
    fn argmax_takes_first_on_ties() {
        assert_eq!(t(&[1.0, 3.0, 3.0], &[3]).argmax(), 1);
    }

    #[test]
    fn non_finite_detection() {
        assert!(!t(&[1.0, 2.0], &[2]).has_non_finite());
        assert!(t(&[1.0, f32::NAN], &[2]).has_non_finite());
        assert!(t(&[f32::INFINITY, 0.0], &[2]).has_non_finite());
    }

    #[test]
    fn top_k_orders_descending() {
        let a = t(&[0.1, 0.9, 0.5, 0.7], &[4]);
        assert_eq!(a.top_k(3), vec![1, 3, 2]);
        assert_eq!(a.top_k(10).len(), 4, "top_k clamps to length");
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let a = t(&[1.0, 2.0, 3.0, 1.0, 1.0, 1.0], &[2, 3]);
        let s = a.softmax_rows();
        for r in 0..2 {
            let sum: f32 = (0..3).map(|c| s.at(&[r, c])).sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
        // Uniform logits give uniform probabilities.
        assert!((s.at(&[1, 0]) - 1.0 / 3.0).abs() < 1e-6);
        // Softmax is monotone in the logits.
        assert!(s.at(&[0, 2]) > s.at(&[0, 1]));
    }

    #[test]
    fn softmax_is_stable_for_large_logits() {
        let a = t(&[1000.0, 1001.0], &[1, 2]);
        let s = a.softmax_rows();
        assert!(!s.has_non_finite());
        assert!((s.at(&[0, 0]) + s.at(&[0, 1]) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn concat_split_roundtrip() {
        let a = Tensor::from_fn(&[2, 2, 2, 2], |i| i as f32);
        let b = Tensor::from_fn(&[2, 3, 2, 2], |i| 100.0 + i as f32);
        let cat = Tensor::concat_channels(&[a.clone(), b.clone()]);
        assert_eq!(cat.dims(), &[2, 5, 2, 2]);
        let parts = cat.split_channels(&[2, 3]);
        assert_eq!(parts[0], a);
        assert_eq!(parts[1], b);
    }

    #[test]
    #[should_panic(expected = "do not sum to channel count")]
    fn split_rejects_bad_sizes() {
        Tensor::zeros(&[1, 4, 1, 1]).split_channels(&[1, 2]);
    }
}
