//! Shape bookkeeping and validation.

use std::error::Error;
use std::fmt;

/// Error returned when tensor shapes are inconsistent with an operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeError {
    message: String,
}

impl ShapeError {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "shape error: {}", self.message)
    }
}

impl Error for ShapeError {}

/// Number of elements implied by a shape.
pub(crate) fn numel(shape: &[usize]) -> usize {
    shape.iter().product()
}

/// Row-major strides for a shape.
pub(crate) fn strides(shape: &[usize]) -> Vec<usize> {
    let mut out = vec![1; shape.len()];
    for i in (0..shape.len().saturating_sub(1)).rev() {
        out[i] = out[i + 1] * shape[i + 1];
    }
    out
}

/// Flat row-major offset of a multi-index.
///
/// # Panics
///
/// Panics if `index.len() != shape.len()` or an index is out of bounds.
pub(crate) fn offset(shape: &[usize], index: &[usize]) -> usize {
    assert_eq!(
        index.len(),
        shape.len(),
        "index rank {} does not match tensor rank {}",
        index.len(),
        shape.len()
    );
    let mut off = 0;
    let mut stride = 1;
    for i in (0..shape.len()).rev() {
        assert!(
            index[i] < shape[i],
            "index {} out of bounds for axis {} with size {}",
            index[i],
            i,
            shape[i]
        );
        off += index[i] * stride;
        stride *= shape[i];
    }
    off
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numel_of_empty_shape_is_one() {
        // A rank-0 tensor is a scalar with one element.
        assert_eq!(numel(&[]), 1);
    }

    #[test]
    fn numel_multiplies_axes() {
        assert_eq!(numel(&[2, 3, 4]), 24);
    }

    #[test]
    fn strides_are_row_major() {
        assert_eq!(strides(&[2, 3, 4]), vec![12, 4, 1]);
        assert_eq!(strides(&[5]), vec![1]);
    }

    #[test]
    fn offset_walks_row_major() {
        let shape = [2, 3, 4];
        assert_eq!(offset(&shape, &[0, 0, 0]), 0);
        assert_eq!(offset(&shape, &[0, 0, 3]), 3);
        assert_eq!(offset(&shape, &[0, 1, 0]), 4);
        assert_eq!(offset(&shape, &[1, 2, 3]), 23);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn offset_panics_out_of_bounds() {
        offset(&[2, 2], &[2, 0]);
    }

    #[test]
    #[should_panic(expected = "does not match tensor rank")]
    fn offset_panics_on_rank_mismatch() {
        offset(&[2, 2], &[1]);
    }

    #[test]
    fn shape_error_displays_message() {
        let err = ShapeError::new("bad reshape");
        assert_eq!(err.to_string(), "shape error: bad reshape");
    }
}
