//! Spatial resizing: zero padding and nearest-neighbour upsampling.
//!
//! Used by the interpretability stack to bring layer-resolution heatmaps up
//! to input resolution (the paper's Fig. 7 panels superimpose the Grad-CAM
//! map on the image), and generally useful for custom architectures.

use crate::tensor::Tensor;

/// Zero-pads an `NCHW` tensor by `pad` pixels on all four spatial sides.
///
/// # Panics
///
/// Panics if the tensor is not rank 4.
pub fn zero_pad2d(input: &Tensor, pad: usize) -> Tensor {
    let (n, c, h, w) = input.dims4();
    let (oh, ow) = (h + 2 * pad, w + 2 * pad);
    let mut out = Tensor::zeros(&[n, c, oh, ow]);
    for bn in 0..n {
        for ch in 0..c {
            let src = input.fmap(bn, ch).to_vec();
            let dst = out.fmap_mut(bn, ch);
            for y in 0..h {
                let drow = (y + pad) * ow + pad;
                dst[drow..drow + w].copy_from_slice(&src[y * w..(y + 1) * w]);
            }
        }
    }
    out
}

/// Nearest-neighbour upsampling of an `NCHW` tensor by an integer factor.
///
/// # Panics
///
/// Panics if the tensor is not rank 4 or `factor == 0`.
pub fn upsample_nearest(input: &Tensor, factor: usize) -> Tensor {
    assert!(factor > 0, "upsampling factor must be positive");
    let (n, c, h, w) = input.dims4();
    let (oh, ow) = (h * factor, w * factor);
    let mut out = Tensor::zeros(&[n, c, oh, ow]);
    for bn in 0..n {
        for ch in 0..c {
            let src = input.fmap(bn, ch).to_vec();
            let dst = out.fmap_mut(bn, ch);
            for oy in 0..oh {
                let sy = oy / factor;
                for ox in 0..ow {
                    dst[oy * ow + ox] = src[sy * w + ox / factor];
                }
            }
        }
    }
    out
}

/// Nearest-neighbour resize of a rank-2 map (e.g. a heatmap) to an arbitrary
/// target size.
///
/// # Panics
///
/// Panics if the tensor is not rank 2 or a target dimension is zero.
pub fn resize_map(map: &Tensor, target_h: usize, target_w: usize) -> Tensor {
    let (h, w) = map.dims2();
    assert!(target_h > 0 && target_w > 0, "target size must be positive");
    Tensor::from_fn(&[target_h, target_w], |i| {
        let y = i / target_w;
        let x = i % target_w;
        let sy = (y * h / target_h).min(h - 1);
        let sx = (x * w / target_w).min(w - 1);
        map.at(&[sy, sx])
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_pad_places_content_centrally() {
        let x = Tensor::from_fn(&[1, 1, 2, 2], |i| 1.0 + i as f32);
        let p = zero_pad2d(&x, 1);
        assert_eq!(p.dims(), &[1, 1, 4, 4]);
        assert_eq!(p.at(&[0, 0, 0, 0]), 0.0);
        assert_eq!(p.at(&[0, 0, 1, 1]), 1.0);
        assert_eq!(p.at(&[0, 0, 2, 2]), 4.0);
        assert_eq!(p.sum(), x.sum(), "padding adds no mass");
    }

    #[test]
    fn zero_pad_zero_is_identity() {
        let x = Tensor::from_fn(&[2, 3, 4, 4], |i| i as f32);
        assert_eq!(zero_pad2d(&x, 0), x);
    }

    #[test]
    fn upsample_repeats_pixels() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]);
        let u = upsample_nearest(&x, 2);
        assert_eq!(u.dims(), &[1, 1, 4, 4]);
        assert_eq!(u.at(&[0, 0, 0, 0]), 1.0);
        assert_eq!(u.at(&[0, 0, 0, 1]), 1.0);
        assert_eq!(u.at(&[0, 0, 1, 1]), 1.0);
        assert_eq!(u.at(&[0, 0, 3, 3]), 4.0);
        assert_eq!(u.sum(), 4.0 * x.sum(), "each pixel appears factor^2 times");
    }

    #[test]
    fn upsample_factor_one_is_identity() {
        let x = Tensor::from_fn(&[1, 2, 3, 3], |i| i as f32);
        assert_eq!(upsample_nearest(&x, 1), x);
    }

    #[test]
    fn resize_map_integer_factor_matches_upsample() {
        let m = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let r = resize_map(&m, 4, 4);
        let u = upsample_nearest(&m.reshaped(&[1, 1, 2, 2]).unwrap(), 2);
        assert_eq!(r.data(), u.data());
    }

    #[test]
    fn resize_map_downsamples_too() {
        let m = Tensor::from_fn(&[4, 4], |i| i as f32);
        let r = resize_map(&m, 2, 2);
        assert_eq!(r.dims(), &[2, 2]);
        assert_eq!(r.at(&[0, 0]), m.at(&[0, 0]));
        assert_eq!(r.at(&[1, 1]), m.at(&[2, 2]));
    }

    #[test]
    #[should_panic(expected = "factor must be positive")]
    fn upsample_rejects_zero_factor() {
        upsample_nearest(&Tensor::zeros(&[1, 1, 2, 2]), 0);
    }
}
