//! # rustfi-quant
//!
//! Symmetric INT8 quantization and the bit-level fault models built on it.
//!
//! The PyTorchFI paper's headline resiliency experiment (Fig. 4) injects
//! *single bit flips into INT8-quantized neurons*. This crate provides:
//!
//! - [`int8`]: symmetric per-tensor quantization (`q = clamp(round(x/s))`,
//!   `s = max|x| / 127`), fake-quantization of whole tensors, and INT8 bit
//!   flips expressed in the dequantized domain;
//! - [`fp32`]: FP32 bit-flip fault models (thin wrappers over
//!   [`rustfi_tensor::bits`] plus random-bit selection helpers).
//!
//! # Example
//!
//! ```
//! use rustfi_quant::int8;
//!
//! // Quantize a neuron value in a feature map whose max |activation| is 6.35.
//! let scale = int8::scale_for_max_abs(6.35);
//! let q = int8::quantize(1.0, scale);
//! let back = int8::dequantize(q, scale);
//! assert!((back - 1.0).abs() < scale, "round-trip error below one step");
//!
//! // A hardware bit flip in the stored INT8 value, seen at FP32 level:
//! let corrupted = int8::flip_bit_in_quantized(1.0, scale, 6);
//! assert!((corrupted - 1.0).abs() > 1.0, "high bit flips move the value far");
//! ```

pub mod fp32;
pub mod int8;
