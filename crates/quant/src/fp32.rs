//! FP32 bit-flip fault models.
//!
//! Thin semantic layer over [`rustfi_tensor::bits`]: random-bit selection and
//! field-aware helpers used by perturbation models that target IEEE-754
//! values directly (the object-detection use case injects uniformly random
//! FP32 values; other studies flip specific exponent/mantissa bits).

use rustfi_tensor::bits;
use rustfi_tensor::SeededRng;

/// Flips one uniformly chosen bit of an `f32`.
pub fn flip_random_bit(value: f32, rng: &mut SeededRng) -> f32 {
    bits::flip_bit_f32(value, rng.below(32) as u32)
}

/// Flips one uniformly chosen *exponent* bit (bits 23–30) — the flips most
/// likely to produce egregious magnitudes.
pub fn flip_random_exponent_bit(value: f32, rng: &mut SeededRng) -> f32 {
    bits::flip_bit_f32(value, 23 + rng.below(8) as u32)
}

/// Flips one uniformly chosen *mantissa* bit (bits 0–22) — small relative
/// perturbations.
pub fn flip_random_mantissa_bit(value: f32, rng: &mut SeededRng) -> f32 {
    bits::flip_bit_f32(value, rng.below(23) as u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_flip_changes_bits_deterministically() {
        let mut a = SeededRng::new(1);
        let mut b = SeededRng::new(1);
        let x = 1.25f32;
        assert_eq!(flip_random_bit(x, &mut a), flip_random_bit(x, &mut b));
        assert_ne!(flip_random_bit(x, &mut a).to_bits(), x.to_bits());
    }

    #[test]
    fn exponent_flip_changes_magnitude_class() {
        let mut rng = SeededRng::new(2);
        for _ in 0..32 {
            let y = flip_random_exponent_bit(1.0, &mut rng);
            let ratio = (y / 1.0).abs();
            assert!(
                ratio <= 0.5 + 1e-6 || ratio >= 2.0 - 1e-6,
                "exponent flip at least halves or doubles: {y}"
            );
        }
    }

    #[test]
    fn mantissa_flip_keeps_sign_and_exponent_class() {
        let mut rng = SeededRng::new(3);
        for _ in 0..32 {
            let y = flip_random_mantissa_bit(4.0, &mut rng);
            assert!(y > 0.0, "sign preserved");
            assert!((4.0..8.0).contains(&y), "same binade, got {y}");
        }
    }
}
