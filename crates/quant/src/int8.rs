//! Symmetric INT8 quantization and INT8 bit-flip fault models.
//!
//! The scheme is symmetric per-tensor quantization with the zero point fixed
//! at 0 and the representable range `[-127, 127]` (the value `-128` is left
//! unused, as common INT8 inference kernels do):
//!
//! ```text
//! scale = max|x| / 127        q = clamp(round(x / scale), -127, 127)
//! ```
//!
//! The rounding rule itself — half-away-from-zero ties, NaN→0, ±∞
//! saturation — lives in **one place**, [`rustfi_tensor::qkernels`]: this
//! module's scalar f32-simulation helpers and the real stored-`i8` path
//! ([`rustfi_tensor::QTensor`], the quantized conv/linear kernels) both
//! delegate to it, so the simulated and real INT8 paths produce
//! bit-identical quantized words by construction. The SIMD slice variants
//! ([`quantize_slice`], [`dequantize_slice`], [`requantize_slice`]) are
//! re-exported here for callers that work on whole buffers.

use rustfi_tensor::qkernels;
use rustfi_tensor::Tensor;

// The whole-slice kernels backing the scalar helpers below; re-exported so
// quant users get the slice API alongside the scalar one.
pub use rustfi_tensor::qkernels::{dequantize_slice, quantize_slice, requantize_slice};

/// Largest representable quantized magnitude.
pub const QMAX: i32 = 127;

/// Number of bits in the INT8 representation.
pub const INT8_BITS: u32 = 8;

/// Quantization scale that maps `max_abs` to [`QMAX`].
///
/// A non-finite `max_abs` (which arises when quantizing activations that an
/// upstream fault has driven to ±∞) saturates to the largest finite range,
/// mirroring hardware that clamps at the representable maximum.
///
/// # Panics
///
/// Panics if `max_abs` is negative or NaN.
pub fn scale_for_max_abs(max_abs: f32) -> f32 {
    qkernels::scale_for_max_abs(max_abs)
}

/// Scale for quantizing a slice of values (dynamic range over the slice).
///
/// Non-finite elements (possible under upstream fault injection) are ignored
/// when determining the range; an all-non-finite slice falls back to the
/// minimum scale. Campaigns apply this per batch sample, so one fused
/// trial's fault cannot rescale the quantization grid of its siblings.
pub fn slice_scale(values: &[f32]) -> f32 {
    qkernels::scale_for_max_abs(qkernels::slice_max_abs_finite(values))
}

/// Scale for quantizing all values of a tensor (per-tensor dynamic range).
pub fn tensor_scale(t: &Tensor) -> f32 {
    slice_scale(t.data())
}

/// Quantizes a value to INT8 with the given scale.
///
/// Infinite inputs saturate to ±[`QMAX`]; NaN quantizes to 0 (Rust's
/// saturating float→int cast), so faulty activations stay representable.
/// Delegates to [`rustfi_tensor::qkernels::quantize_one`] — the single
/// rounding implementation shared with the stored-INT8 inference path.
///
/// # Panics
///
/// Panics if `scale` is not positive.
pub fn quantize(x: f32, scale: f32) -> i8 {
    qkernels::quantize_one(x, scale)
}

/// Dequantizes an INT8 value.
pub fn dequantize(q: i8, scale: f32) -> f32 {
    qkernels::dequantize_one(q, scale)
}

/// Rounds a value through the INT8 grid ("fake quantization"): the result is
/// an FP32 value representable in INT8 under `scale`.
pub fn fake_quantize(x: f32, scale: f32) -> f32 {
    dequantize(quantize(x, scale), scale)
}

/// Fake-quantizes every element of a tensor with its own dynamic per-tensor
/// scale; returns the quantized tensor and the scale used.
///
/// This is how the stack emulates "INT8 neuron-quantization" (paper §IV-A):
/// activations are snapped to the INT8 grid after each injectable layer.
pub fn fake_quantize_tensor(t: &Tensor) -> (Tensor, f32) {
    let scale = tensor_scale(t);
    (t.map(|x| fake_quantize(x, scale)), scale)
}

/// Flips bit `bit` (0 = LSB, 7 = sign bit of the two's-complement byte) of
/// an INT8 value.
///
/// # Panics
///
/// Panics if `bit >= 8`.
pub fn flip_bit_i8(q: i8, bit: u32) -> i8 {
    assert!(bit < INT8_BITS, "int8 bit index {bit} out of range");
    (q as u8 ^ (1u8 << bit)) as i8
}

/// Models a hardware bit flip in a quantized neuron, observed at FP32 level:
/// quantize `x`, flip one stored bit, dequantize.
///
/// # Panics
///
/// Panics if `bit >= 8` or `scale` is not positive.
pub fn flip_bit_in_quantized(x: f32, scale: f32, bit: u32) -> f32 {
    dequantize(flip_bit_i8(quantize(x, scale), bit), scale)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rustfi_tensor::SeededRng;

    #[test]
    fn quantize_roundtrip_error_below_half_step() {
        let scale = scale_for_max_abs(10.0);
        for &x in &[0.0f32, 1.0, -3.7, 9.99, -10.0] {
            let err = (fake_quantize(x, scale) - x).abs();
            assert!(err <= scale / 2.0 + 1e-6, "x={x}, err={err}");
        }
    }

    #[test]
    fn quantize_clamps_out_of_range() {
        let scale = scale_for_max_abs(1.0);
        assert_eq!(quantize(100.0, scale), 127);
        assert_eq!(quantize(-100.0, scale), -127);
    }

    #[test]
    fn zero_maps_to_zero() {
        let scale = scale_for_max_abs(5.0);
        assert_eq!(quantize(0.0, scale), 0);
        assert_eq!(dequantize(0, scale), 0.0);
    }

    #[test]
    fn all_zero_tensor_has_tiny_scale_but_no_nan() {
        let t = Tensor::zeros(&[8]);
        let (q, scale) = fake_quantize_tensor(&t);
        assert!(scale > 0.0);
        assert!(!q.has_non_finite());
        assert!(q.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn tensor_scale_uses_max_abs() {
        let t = Tensor::from_vec(vec![1.0, -6.35, 2.0], &[3]);
        assert!((tensor_scale(&t) - 6.35 / 127.0).abs() < 1e-7);
    }

    #[test]
    fn fake_quantize_tensor_is_idempotent() {
        let mut rng = SeededRng::new(1);
        let t = Tensor::rand_normal(&[64], 0.0, 2.0, &mut rng);
        let (q1, s1) = fake_quantize_tensor(&t);
        let (q2, s2) = fake_quantize_tensor(&q1);
        // The max element is exactly representable, so the scale is stable
        // and a second pass changes nothing (up to float rounding).
        assert!((s1 - s2).abs() < 1e-9);
        for (a, b) in q1.data().iter().zip(q2.data()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn bit_flip_is_involutive() {
        for q in [-127i8, -1, 0, 1, 42, 127] {
            for bit in 0..8 {
                assert_eq!(flip_bit_i8(flip_bit_i8(q, bit), bit), q);
            }
        }
    }

    #[test]
    fn sign_bit_flip_changes_sign_region() {
        // Two's complement: flipping bit 7 of a small positive value makes it
        // very negative.
        let q = flip_bit_i8(5, 7);
        assert!(q < -100, "got {q}");
    }

    #[test]
    fn high_bit_flip_moves_value_by_half_range() {
        let scale = scale_for_max_abs(127.0); // scale = 1
        let before = 10.0;
        let after = flip_bit_in_quantized(before, scale, 6);
        assert!((after - before).abs() >= 63.9, "bit 6 is worth 64 steps");
    }

    #[test]
    fn lsb_flip_is_one_step() {
        let scale = scale_for_max_abs(127.0);
        let after = flip_bit_in_quantized(10.0, scale, 0);
        assert!(((after - 10.0).abs() - 1.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bit_8() {
        flip_bit_i8(0, 8);
    }

    #[test]
    #[should_panic(expected = "invalid max_abs")]
    fn rejects_nan_max() {
        scale_for_max_abs(f32::NAN);
    }

    #[test]
    fn infinite_range_saturates() {
        let scale = scale_for_max_abs(f32::INFINITY);
        assert!(scale.is_finite() && scale > 0.0);
        assert_eq!(quantize(f32::INFINITY, scale), 127);
        assert_eq!(quantize(f32::NEG_INFINITY, scale), -127);
        assert_eq!(quantize(f32::NAN, scale), 0);
    }

    #[test]
    fn slice_scale_matches_tensor_scale_per_sample() {
        // Two batch samples with different ranges: quantizing each against
        // its own slice scale must match quantizing each as its own tensor.
        let a = vec![1.0f32, -2.0, 0.5];
        let b = vec![100.0f32, -50.0, 25.0];
        let sa = slice_scale(&a);
        let sb = slice_scale(&b);
        assert_eq!(sa, tensor_scale(&Tensor::from_vec(a, &[1, 3])));
        assert_eq!(sb, tensor_scale(&Tensor::from_vec(b, &[1, 3])));
        assert!(sb > sa, "wider range, coarser grid");
    }

    #[test]
    fn tensor_scale_ignores_non_finite_elements() {
        let t = Tensor::from_vec(vec![1.0, f32::INFINITY, -3.0, f32::NAN], &[4]);
        let scale = tensor_scale(&t);
        assert!(
            (scale - 3.0 / 127.0).abs() < 1e-7,
            "range from finite values only"
        );
        // Fake-quantizing the faulty tensor stays finite.
        let q = t.map(|x| fake_quantize(x, scale));
        assert!(!q.has_non_finite());
    }
}
