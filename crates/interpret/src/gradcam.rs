//! Grad-CAM: gradient-weighted class activation mapping.

use parking_lot::Mutex;
use rustfi_nn::{LayerId, Network};
use rustfi_tensor::Tensor;
use std::sync::Arc;

/// Output of a Grad-CAM pass.
#[derive(Debug, Clone)]
pub struct CamResult {
    /// The class-activation heatmap at the target layer's spatial
    /// resolution, normalized to `[0, 1]` (rank 2: `[h, w]`).
    pub heatmap: Tensor,
    /// Per-channel importance weights (GAP of the gradient).
    pub channel_weights: Vec<f32>,
    /// The clean logits of the forward pass.
    pub logits: Tensor,
    /// Top-1 class of the forward pass.
    pub top1: usize,
}

impl CamResult {
    /// The heatmap resized (nearest-neighbour) to an arbitrary resolution —
    /// typically the input image's, for superimposed rendering as in the
    /// paper's Fig. 7 panels.
    ///
    /// # Panics
    ///
    /// Panics if a target dimension is zero.
    pub fn heatmap_at(&self, height: usize, width: usize) -> Tensor {
        rustfi_tensor::resize_map(&self.heatmap, height, width)
    }
}

/// Computes Grad-CAM for `class` at convolutional layer `layer`.
///
/// Runs one forward pass (capturing the layer's activations through a
/// forward hook), then one backward pass from a one-hot gradient at `class`
/// (capturing the gradient w.r.t. the layer's output through a gradient
/// hook). Both hooks are removed before returning.
///
/// # Panics
///
/// Panics if `image` is not a batch-1 `NCHW` tensor, `class` is out of
/// range, or `layer` does not produce a rank-4 output.
pub fn gradcam(net: &mut Network, image: &Tensor, class: usize, layer: LayerId) -> CamResult {
    assert_eq!(image.dims()[0], 1, "gradcam expects a single image");
    let acts: Arc<Mutex<Option<Tensor>>> = Arc::new(Mutex::new(None));
    let grads: Arc<Mutex<Option<Tensor>>> = Arc::new(Mutex::new(None));

    let a_sink = Arc::clone(&acts);
    let h_fwd = net
        .hooks()
        .register_forward(layer, move |_ctx, out| *a_sink.lock() = Some(out.clone()));
    let g_sink = Arc::clone(&grads);
    let h_grad = net
        .hooks()
        .register_grad(layer, move |_ctx, g| *g_sink.lock() = Some(g.clone()));

    let was_training = net.is_training();
    net.set_training(false);
    let logits = net.forward(image);
    let (_, classes) = logits.dims2();
    assert!(
        class < classes,
        "class {class} out of range for {classes} classes"
    );
    let mut onehot = Tensor::zeros(logits.dims());
    onehot.set(&[0, class], 1.0);
    net.backward(&onehot);
    net.set_training(was_training);

    net.hooks().remove(h_fwd);
    net.hooks().remove(h_grad);

    let acts = acts
        .lock()
        .take()
        .expect("forward hook captured activations");
    let grads = grads
        .lock()
        .take()
        .expect("gradient hook captured gradients");
    assert_eq!(
        acts.ndim(),
        4,
        "gradcam target layer must produce feature maps (rank 4), got {:?}",
        acts.dims()
    );
    let (_, c, h, w) = acts.dims4();

    // Channel weights: global average pool of the gradient.
    let channel_weights: Vec<f32> = (0..c)
        .map(|ch| grads.fmap(0, ch).iter().sum::<f32>() / (h * w) as f32)
        .collect();

    // CAM = ReLU(sum_c w_c * A_c), normalized to [0, 1].
    let mut cam = vec![0.0f32; h * w];
    for (ch, &wc) in channel_weights.iter().enumerate() {
        let a = acts.fmap(0, ch);
        for (o, &v) in cam.iter_mut().zip(a) {
            *o += wc * v;
        }
    }
    for v in &mut cam {
        *v = v.max(0.0);
    }
    let max = cam.iter().copied().fold(0.0f32, f32::max);
    if max > 0.0 {
        for v in &mut cam {
            *v /= max;
        }
    }

    let top1 = {
        let row = logits.data();
        let mut best = 0;
        for (i, &v) in row.iter().enumerate() {
            if v > row[best] {
                best = i;
            }
        }
        best
    };

    CamResult {
        heatmap: Tensor::from_vec(cam, &[h, w]),
        channel_weights,
        logits,
        top1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rustfi_nn::{zoo, ZooConfig};
    use rustfi_tensor::SeededRng;

    fn setup() -> (Network, Tensor) {
        let net = zoo::lenet(&ZooConfig::tiny(10));
        let mut rng = SeededRng::new(1);
        let image = Tensor::rand_normal(&[1, 3, 16, 16], 0.0, 1.0, &mut rng);
        (net, image)
    }

    #[test]
    fn heatmap_is_normalized_and_layer_sized() {
        let (mut net, image) = setup();
        let conv2 = net.injectable_layers()[1];
        let cam = gradcam(&mut net, &image, 0, conv2);
        // lenet conv2 output is 12x8x8.
        assert_eq!(cam.heatmap.dims(), &[8, 8]);
        assert!(cam.heatmap.max() <= 1.0 + 1e-6);
        assert!(cam.heatmap.min() >= 0.0);
        assert_eq!(cam.channel_weights.len(), 12);
    }

    #[test]
    fn heatmap_upsamples_to_input_resolution() {
        let (mut net, image) = setup();
        let conv2 = net.injectable_layers()[1];
        let cam = gradcam(&mut net, &image, 0, conv2);
        let full = cam.heatmap_at(16, 16);
        assert_eq!(full.dims(), &[16, 16]);
        // Nearest-neighbour preserves the value range exactly.
        assert_eq!(full.max(), cam.heatmap.max());
        assert_eq!(full.min(), cam.heatmap.min());
    }

    #[test]
    fn hooks_are_cleaned_up() {
        let (mut net, image) = setup();
        let conv = net.injectable_layers()[0];
        let _ = gradcam(&mut net, &image, 1, conv);
        assert!(net.hooks().is_empty());
    }

    #[test]
    fn gradcam_is_deterministic() {
        let (mut net, image) = setup();
        let conv = net.injectable_layers()[0];
        let a = gradcam(&mut net, &image, 2, conv);
        let b = gradcam(&mut net, &image, 2, conv);
        assert_eq!(a.heatmap, b.heatmap);
        assert_eq!(a.top1, b.top1);
    }

    #[test]
    fn different_classes_give_different_heatmaps() {
        let (mut net, image) = setup();
        let conv = net.injectable_layers()[1];
        let a = gradcam(&mut net, &image, 0, conv);
        let b = gradcam(&mut net, &image, 5, conv);
        assert_ne!(a.heatmap, b.heatmap);
    }

    #[test]
    fn logits_match_plain_forward() {
        let (mut net, image) = setup();
        let clean = net.forward(&image);
        let conv = net.injectable_layers()[0];
        let cam = gradcam(&mut net, &image, 0, conv);
        assert_eq!(cam.logits, clean);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_class() {
        let (mut net, image) = setup();
        let conv = net.injectable_layers()[0];
        gradcam(&mut net, &image, 99, conv);
    }
}
