//! ASCII rendering of heatmaps and images (the terminal stand-in for the
//! paper's figure panels).

use rustfi_tensor::Tensor;

/// Intensity ramp from dark to bright.
const RAMP: &[u8] = b" .:-=+*#%@";

/// Renders a rank-2 heatmap (values in `[0, 1]`) as ASCII art, one character
/// per cell, rows separated by newlines.
///
/// # Panics
///
/// Panics if the tensor is not rank 2.
pub fn render_heatmap(heatmap: &Tensor) -> String {
    let (h, w) = heatmap.dims2();
    let mut out = String::with_capacity(h * (w + 1));
    for y in 0..h {
        for x in 0..w {
            let v = heatmap.at(&[y, x]).clamp(0.0, 1.0);
            let idx = ((v * (RAMP.len() - 1) as f32).round() as usize).min(RAMP.len() - 1);
            out.push(RAMP[idx] as char);
        }
        out.push('\n');
    }
    out
}

/// Renders one channel of an `NCHW` image (auto-normalized) as ASCII art.
///
/// # Panics
///
/// Panics if the tensor is not rank 4 or indices are out of range.
pub fn render_channel(image: &Tensor, batch: usize, channel: usize) -> String {
    let (_, _, h, w) = image.dims4();
    let fm = image.fmap(batch, channel);
    let lo = fm.iter().copied().fold(f32::INFINITY, f32::min);
    let hi = fm.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let range = (hi - lo).max(1e-6);
    let normalized = Tensor::from_vec(fm.iter().map(|v| (v - lo) / range).collect(), &[h, w]);
    render_heatmap(&normalized)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_shapes_lines_correctly() {
        let hm = Tensor::zeros(&[3, 5]);
        let s = render_heatmap(&hm);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines.iter().all(|l| l.len() == 5));
    }

    #[test]
    fn extremes_map_to_ramp_ends() {
        let hm = Tensor::from_vec(vec![0.0, 1.0], &[1, 2]);
        let s = render_heatmap(&hm);
        assert!(s.starts_with(' '));
        assert!(s.contains('@'));
    }

    #[test]
    fn out_of_range_values_are_clamped() {
        let hm = Tensor::from_vec(vec![-5.0, 42.0], &[1, 2]);
        let s = render_heatmap(&hm);
        assert_eq!(&s[..2], " @");
    }

    #[test]
    fn channel_render_normalizes() {
        let img = Tensor::from_fn(&[1, 1, 2, 2], |i| i as f32 * 100.0);
        let s = render_channel(&img, 0, 0);
        assert!(s.starts_with(' '), "minimum maps to dark");
        assert!(s.trim_end().ends_with('@'), "maximum maps to bright");
    }
}
