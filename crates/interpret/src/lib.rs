//! # rustfi-interpret
//!
//! Grad-CAM interpretability for the RustFI stack (paper §IV-E / Fig. 7).
//!
//! Grad-CAM visualizes which input regions drove a classification: it takes
//! the gradient of a class score with respect to a convolutional layer's
//! feature maps, global-average-pools the gradient into per-channel
//! importances, and combines the (ReLU'd) weighted feature maps into a
//! heatmap. RustFI pairs this with fault injection: the same gradients rank
//! feature maps by *sensitivity*, and injections into the least / most
//! sensitive map demonstrate the interpretability use case — an extreme
//! value in an unimportant feature map leaves the heatmap and the Top-1
//! prediction intact, while the same value in an important map skews both.
//!
//! # Example
//!
//! ```
//! use rustfi_interpret::gradcam;
//! use rustfi_nn::{zoo, ZooConfig};
//! use rustfi_tensor::Tensor;
//!
//! let mut net = zoo::lenet(&ZooConfig::tiny(10));
//! let conv = net.injectable_layers()[1];
//! let image = Tensor::ones(&[1, 3, 16, 16]);
//! let cam = gradcam::gradcam(&mut net, &image, 3, conv);
//! assert_eq!(cam.heatmap.dims().len(), 2);
//! ```

pub mod gradcam;
pub mod render;
pub mod saliency;
pub mod sensitivity;

pub use gradcam::{gradcam, CamResult};
pub use render::render_heatmap;
pub use saliency::saliency;
pub use sensitivity::{heatmap_divergence, rank_feature_maps};
