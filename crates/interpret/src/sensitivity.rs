//! Feature-map sensitivity ranking and heatmap comparison.

use crate::gradcam::gradcam;
use rustfi_nn::{LayerId, Network};
use rustfi_tensor::Tensor;

/// Ranks feature maps by sensitivity — mean |gradient| per channel, exactly
/// the "defined by the gradient values of the feature map" criterion of the
/// paper's Fig. 7 — most sensitive first.
///
/// Input: the per-channel Grad-CAM weights (signed); output: channel indices
/// with scores, sorted descending by |weight|.
pub fn rank_feature_maps(channel_weights: &[f32]) -> Vec<(usize, f32)> {
    let mut ranked: Vec<(usize, f32)> = channel_weights
        .iter()
        .enumerate()
        .map(|(i, &w)| (i, w.abs()))
        .collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    ranked
}

/// Per-channel sensitivity aggregated over *all* classes: the sum over
/// classes of the absolute Grad-CAM channel weight.
///
/// Ranking by the true class's gradient alone can mislabel a feature map as
/// "insensitive" when it strongly drives *other* classes (injecting into it
/// then flips the prediction); aggregating over every class's gradient
/// captures total downstream influence.
///
/// Runs one Grad-CAM pass per class.
///
/// # Panics
///
/// Panics if `image` is not batch-1 or `layer` is not a feature-map layer.
pub fn aggregate_channel_weights(
    net: &mut Network,
    image: &Tensor,
    layer: LayerId,
    num_classes: usize,
) -> Vec<f32> {
    let mut totals: Vec<f32> = Vec::new();
    for class in 0..num_classes {
        let cam = gradcam(net, image, class, layer);
        if totals.is_empty() {
            totals = vec![0.0; cam.channel_weights.len()];
        }
        for (t, w) in totals.iter_mut().zip(&cam.channel_weights) {
            *t += w.abs();
        }
    }
    totals
}

/// Mean absolute difference between two normalized heatmaps of the same
/// shape — 0 for identical maps, approaching 1 for fully displaced mass.
///
/// # Panics
///
/// Panics on shape mismatch.
pub fn heatmap_divergence(a: &Tensor, b: &Tensor) -> f32 {
    assert_eq!(a.dims(), b.dims(), "heatmap shapes differ");
    if a.is_empty() {
        return 0.0;
    }
    a.data()
        .iter()
        .zip(b.data())
        .map(|(x, y)| (x - y).abs())
        .sum::<f32>()
        / a.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranking_orders_by_magnitude() {
        let ranked = rank_feature_maps(&[0.1, -0.9, 0.5]);
        assert_eq!(ranked[0].0, 1);
        assert_eq!(ranked[1].0, 2);
        assert_eq!(ranked[2].0, 0);
        assert!(
            (ranked[0].1 - 0.9).abs() < 1e-6,
            "scores are absolute values"
        );
    }

    #[test]
    fn ranking_is_stable_for_empty() {
        assert!(rank_feature_maps(&[]).is_empty());
    }

    #[test]
    fn aggregate_weights_cover_channels_and_are_nonnegative() {
        use rustfi_nn::{zoo, LayerKind, ZooConfig};
        let mut net = zoo::lenet(&ZooConfig::tiny(6));
        let image = Tensor::ones(&[1, 3, 16, 16]);
        let conv = net
            .layer_infos()
            .iter()
            .find(|l| l.kind == LayerKind::Conv2d)
            .unwrap()
            .id;
        let agg = aggregate_channel_weights(&mut net, &image, conv, 6);
        assert_eq!(agg.len(), 6, "lenet conv1 has 6 feature maps");
        assert!(agg.iter().all(|&w| w >= 0.0));
        assert!(agg.iter().any(|&w| w > 0.0));
        assert!(net.hooks().is_empty(), "cleans up after itself");
    }

    #[test]
    fn divergence_zero_for_identical() {
        let a = Tensor::from_fn(&[4, 4], |i| i as f32 / 16.0);
        assert_eq!(heatmap_divergence(&a, &a), 0.0);
    }

    #[test]
    fn divergence_grows_with_difference() {
        let a = Tensor::zeros(&[4, 4]);
        let b = Tensor::full(&[4, 4], 0.5);
        let c = Tensor::ones(&[4, 4]);
        assert!(heatmap_divergence(&a, &c) > heatmap_divergence(&a, &b));
        assert!((heatmap_divergence(&a, &c) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn divergence_is_symmetric() {
        let a = Tensor::from_fn(&[3, 3], |i| (i as f32 * 0.7).sin().abs());
        let b = Tensor::from_fn(&[3, 3], |i| (i as f32 * 1.3).cos().abs());
        assert!((heatmap_divergence(&a, &b) - heatmap_divergence(&b, &a)).abs() < 1e-7);
    }

    #[test]
    #[should_panic(expected = "shapes differ")]
    fn divergence_rejects_mismatch() {
        heatmap_divergence(&Tensor::zeros(&[2, 2]), &Tensor::zeros(&[3, 3]));
    }
}
