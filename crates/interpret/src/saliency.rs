//! Input-gradient saliency maps (Simonyan et al., one of the
//! interpretability baselines the paper's §IV-E builds on).
//!
//! Where Grad-CAM localizes importance at a convolutional layer's
//! resolution, a saliency map asks the same question at *pixel* resolution:
//! the magnitude of the class-score gradient with respect to each input
//! pixel, maximized over channels.

use rustfi_nn::Network;
use rustfi_tensor::Tensor;

/// Pixel-level saliency of `class` for a single image: `max_c |∂score/∂x|`,
/// normalized to `[0, 1]`, shape `[h, w]`.
///
/// # Panics
///
/// Panics if `image` is not a batch-1 `NCHW` tensor or `class` is out of
/// range.
pub fn saliency(net: &mut Network, image: &Tensor, class: usize) -> Tensor {
    assert_eq!(image.dims()[0], 1, "saliency expects a single image");
    let was_training = net.is_training();
    net.set_training(false);
    let logits = net.forward(image);
    let (_, classes) = logits.dims2();
    assert!(
        class < classes,
        "class {class} out of range for {classes} classes"
    );
    let mut onehot = Tensor::zeros(logits.dims());
    onehot.set(&[0, class], 1.0);
    let grad_input = net.backward(&onehot);
    net.set_training(was_training);

    let (_, c, h, w) = grad_input.dims4();
    let mut map = vec![0.0f32; h * w];
    for ch in 0..c {
        for (m, g) in map.iter_mut().zip(grad_input.fmap(0, ch)) {
            *m = m.max(g.abs());
        }
    }
    let max = map.iter().copied().fold(0.0f32, f32::max);
    if max > 0.0 {
        for v in &mut map {
            *v /= max;
        }
    }
    Tensor::from_vec(map, &[h, w])
}

#[cfg(test)]
mod tests {
    use super::*;
    use rustfi_nn::{zoo, ZooConfig};
    use rustfi_tensor::SeededRng;

    fn setup() -> (Network, Tensor) {
        let net = zoo::lenet(&ZooConfig::tiny(10));
        let mut rng = SeededRng::new(2);
        let image = Tensor::rand_normal(&[1, 3, 16, 16], 0.0, 1.0, &mut rng);
        (net, image)
    }

    #[test]
    fn saliency_is_input_resolution_and_normalized() {
        let (mut net, image) = setup();
        let s = saliency(&mut net, &image, 0);
        assert_eq!(s.dims(), &[16, 16]);
        assert!(s.max() <= 1.0 + 1e-6);
        assert!(s.min() >= 0.0);
        assert!((s.max() - 1.0).abs() < 1e-6, "normalized to a max of 1");
    }

    #[test]
    fn saliency_differs_between_classes() {
        let (mut net, image) = setup();
        let a = saliency(&mut net, &image, 0);
        let b = saliency(&mut net, &image, 7);
        assert_ne!(a, b);
    }

    #[test]
    fn saliency_is_deterministic() {
        let (mut net, image) = setup();
        assert_eq!(saliency(&mut net, &image, 3), saliency(&mut net, &image, 3));
    }

    #[test]
    fn saliency_does_not_disturb_inference() {
        let (mut net, image) = setup();
        let before = net.forward(&image);
        let _ = saliency(&mut net, &image, 1);
        assert_eq!(net.forward(&image), before);
        assert!(!net.is_training());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn saliency_rejects_bad_class() {
        let (mut net, image) = setup();
        saliency(&mut net, &image, 10);
    }
}
