//! The YOLO-lite detector model and its training loop.

use crate::decode::{decode_grid, sigmoid, Detection};
use crate::nms::nms;
use rustfi_data::Scene;
use rustfi_nn::layer::{Conv2d, MaxPool2d, Relu, Sequential};
use rustfi_nn::loss::weighted_sq_error;
use rustfi_nn::module::{Module, Network};
use rustfi_nn::optim::Sgd;
use rustfi_tensor::{ConvSpec, SeededRng, Tensor};

/// Detector architecture knobs.
#[derive(Debug, Clone)]
pub struct DetectorConfig {
    /// Square input size (must be `grid * 2^3`).
    pub image_hw: usize,
    /// Input channels.
    pub channels: usize,
    /// Grid size `S` (the head predicts `S × S` boxes).
    pub grid: usize,
    /// Number of object classes.
    pub num_classes: usize,
    /// Width multiplier for the backbone.
    pub width: usize,
    /// Weight-init seed.
    pub seed: u64,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        Self {
            image_hw: 32,
            channels: 3,
            grid: 4,
            num_classes: rustfi_data::detection::NUM_SHAPE_CLASSES,
            width: 8,
            seed: 0xDE7EC7,
        }
    }
}

/// Training knobs for [`YoloLite::train`].
#[derive(Debug, Clone)]
pub struct TrainDetectorConfig {
    /// Number of epochs over the scene set.
    pub epochs: usize,
    /// Learning rate.
    pub lr: f32,
    /// Momentum.
    pub momentum: f32,
    /// Loss weight for coordinate terms in responsible cells.
    pub coord_weight: f32,
    /// Loss weight for objectness in background cells.
    pub noobj_weight: f32,
}

impl Default for TrainDetectorConfig {
    fn default() -> Self {
        Self {
            epochs: 80,
            lr: 0.02,
            momentum: 0.9,
            coord_weight: 5.0,
            noobj_weight: 0.3,
        }
    }
}

/// A YOLO-style single-shot grid detector.
///
/// Backbone: three conv-relu-pool stages. Head: a 1×1 convolution
/// producing `5 + classes` channels per grid cell. See [`decode_grid`] for
/// the output layout.
pub struct YoloLite {
    net: Network,
    cfg: DetectorConfig,
}

impl YoloLite {
    /// Builds an untrained detector.
    ///
    /// # Panics
    ///
    /// Panics if `image_hw != grid * 8` (three 2× poolings).
    pub fn new(cfg: &DetectorConfig) -> Self {
        assert_eq!(
            cfg.image_hw,
            cfg.grid * 8,
            "image size {} must be 8x the grid {}",
            cfg.image_hw,
            cfg.grid
        );
        let mut rng = SeededRng::new(cfg.seed);
        let w = cfg.width;
        let head_ch = 5 + cfg.num_classes;
        let mut layers: Vec<Box<dyn Module>> = Vec::new();
        // No batch norm: the detector trains scene-by-scene (batch 1), where
        // batch statistics are degenerate.
        for (ci, co) in [(cfg.channels, w), (w, 2 * w), (2 * w, 2 * w)] {
            layers.push(Box::new(Conv2d::new(
                ci,
                co,
                3,
                ConvSpec::new().padding(1),
                &mut rng,
            )));
            layers.push(Box::new(Relu::new()));
            layers.push(Box::new(MaxPool2d::new(2, 2)));
        }
        layers.push(Box::new(Conv2d::new(
            2 * w,
            2 * w,
            3,
            ConvSpec::new().padding(1),
            &mut rng,
        )));
        layers.push(Box::new(Relu::new()));
        layers.push(Box::new(Conv2d::new(
            2 * w,
            head_ch,
            1,
            ConvSpec::new(),
            &mut rng,
        )));
        Self {
            net: Network::new(Box::new(Sequential::new(layers))),
            cfg: cfg.clone(),
        }
    }

    /// The underlying network (for wrapping in a `FaultInjector`).
    pub fn net(&self) -> &Network {
        &self.net
    }

    /// Mutable access to the underlying network.
    pub fn net_mut(&mut self) -> &mut Network {
        &mut self.net
    }

    /// Consumes the detector, returning the network.
    pub fn into_net(self) -> Network {
        self.net
    }

    /// Rebuilds a detector around a network that came from [`into_net`]
    /// (e.g. after wrapping it in a fault injector).
    ///
    /// [`into_net`]: YoloLite::into_net
    pub fn from_net(net: Network, cfg: &DetectorConfig) -> Self {
        Self {
            net,
            cfg: cfg.clone(),
        }
    }

    /// The detector's configuration.
    pub fn config(&self) -> &DetectorConfig {
        &self.cfg
    }

    /// Raw head output `[1, 5 + classes, s, s]` for one image.
    pub fn forward_raw(&mut self, image: &Tensor) -> Tensor {
        self.net.forward(image)
    }

    /// Runs detection: forward, decode, threshold on score, NMS.
    pub fn detect(&mut self, image: &Tensor, score_threshold: f32) -> Vec<Detection> {
        let raw = self.forward_raw(image);
        let cands = decode_grid(&raw, 0, self.cfg.num_classes);
        let above: Vec<Detection> = cands
            .into_iter()
            .filter(|d| d.score >= score_threshold)
            .collect();
        nms(above, 0.4)
    }

    /// Builds the regression target and per-element loss weights for one
    /// scene, in *decoded* (sigmoid/softmax-input) space.
    fn target_for(&self, scene: &Scene, cfg: &TrainDetectorConfig) -> (Tensor, Tensor) {
        let s = self.cfg.grid;
        let ch = 5 + self.cfg.num_classes;
        let mut target = Tensor::zeros(&[1, ch, s, s]);
        let mut weight = Tensor::zeros(&[1, ch, s, s]);
        // Background objectness is pushed toward 0 everywhere...
        for gy in 0..s {
            for gx in 0..s {
                weight.set(&[0, 4, gy, gx], cfg.noobj_weight);
            }
        }
        // ...except in responsible cells, which also regress coords & class.
        for obj in &scene.objects {
            let gx = ((obj.cx * s as f32) as usize).min(s - 1);
            let gy = ((obj.cy * s as f32) as usize).min(s - 1);
            target.set(&[0, 0, gy, gx], obj.cx * s as f32 - gx as f32);
            target.set(&[0, 1, gy, gx], obj.cy * s as f32 - gy as f32);
            target.set(&[0, 2, gy, gx], obj.w);
            target.set(&[0, 3, gy, gx], obj.h);
            target.set(&[0, 4, gy, gx], 1.0);
            for c in 0..4 {
                weight.set(&[0, c, gy, gx], cfg.coord_weight);
            }
            weight.set(&[0, 4, gy, gx], 1.0);
            for c in 0..self.cfg.num_classes {
                target.set(&[0, 5 + c, gy, gx], if c == obj.class { 1.0 } else { 0.0 });
                weight.set(&[0, 5 + c, gy, gx], 1.0);
            }
        }
        (target, weight)
    }

    /// Trains the detector on scenes with a YOLO-v1-style weighted
    /// squared-error loss on sigmoid-decoded outputs. Returns per-epoch
    /// losses.
    ///
    /// # Panics
    ///
    /// Panics if `scenes` is empty.
    pub fn train(&mut self, scenes: &[Scene], cfg: &TrainDetectorConfig) -> Vec<f32> {
        assert!(!scenes.is_empty(), "no training scenes");
        let mut sgd = Sgd::new(cfg.lr).momentum(cfg.momentum);
        let mut losses = Vec::with_capacity(cfg.epochs);
        self.net.set_training(true);
        for _epoch in 0..cfg.epochs {
            let mut epoch_loss = 0.0;
            for scene in scenes {
                self.net.zero_grad();
                let raw = self.net.forward(&scene.image);
                // Decode: sigmoid on coords/size/objectness channels; class
                // logits stay raw and train against one-hot via squared
                // error (keeps the backward simple and is sufficient here).
                let decoded = Tensor::from_fn(raw.dims(), |i| {
                    let (_, ch, s, _) = raw.dims4();
                    let c = (i / (s * s)) % ch;
                    let v = raw.data()[i];
                    if c < 5 {
                        sigmoid(v)
                    } else {
                        v
                    }
                });
                let (target, weight) = self.target_for(scene, cfg);
                let (loss, grad_decoded) = weighted_sq_error(&decoded, &target, &weight);
                // Normalize by cell count so the step size is independent of
                // grid geometry, and chain through the sigmoid where it was
                // applied.
                let norm = 1.0 / (self.cfg.grid * self.cfg.grid) as f32;
                let grad_raw = Tensor::from_fn(raw.dims(), |i| {
                    let (_, ch, s, _) = raw.dims4();
                    let c = (i / (s * s)) % ch;
                    let g = grad_decoded.data()[i] * norm;
                    if c < 5 {
                        let sv = decoded.data()[i];
                        g * sv * (1.0 - sv)
                    } else {
                        g
                    }
                });
                let loss = loss * norm;
                self.net.backward(&grad_raw);
                sgd.step(&mut self.net);
                epoch_loss += loss;
            }
            losses.push(epoch_loss / scenes.len() as f32);
        }
        self.net.set_training(false);
        losses
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diff::diff_detections;
    use rustfi_data::DetectionSpec;

    #[test]
    fn forward_raw_has_head_shape() {
        let mut det = YoloLite::new(&DetectorConfig::default());
        let raw = det.forward_raw(&Tensor::zeros(&[1, 3, 32, 32]));
        assert_eq!(raw.dims(), &[1, 8, 4, 4]);
    }

    #[test]
    #[should_panic(expected = "must be 8x the grid")]
    fn rejects_inconsistent_geometry() {
        let cfg = DetectorConfig {
            image_hw: 32,
            grid: 8,
            ..DetectorConfig::default()
        };
        YoloLite::new(&cfg);
    }

    #[test]
    fn training_reduces_loss() {
        let scenes = DetectionSpec::coco_like().generate(12);
        let mut det = YoloLite::new(&DetectorConfig::default());
        let losses = det.train(
            &scenes,
            &TrainDetectorConfig {
                epochs: 10,
                ..TrainDetectorConfig::default()
            },
        );
        assert!(
            losses.last().unwrap() < &(losses[0] * 0.8),
            "loss should drop by >20%: {losses:?}"
        );
    }

    #[test]
    fn trained_detector_finds_objects() {
        let scenes = DetectionSpec::coco_like().generate(24);
        let mut det = YoloLite::new(&DetectorConfig::default());
        det.train(&scenes, &TrainDetectorConfig::default());
        // On training scenes, most objects should be matched.
        let mut matched = 0;
        let mut total = 0;
        for scene in scenes.iter().take(8) {
            let dets = det.detect(&scene.image, 0.4);
            let diff = diff_detections(&dets, &scene.objects, 0.3);
            matched += diff.matched;
            total += scene.objects.len();
        }
        assert!(
            matched as f32 / total as f32 > 0.6,
            "matched {matched}/{total} objects"
        );
    }

    #[test]
    fn detect_applies_threshold() {
        let mut det = YoloLite::new(&DetectorConfig::default());
        let image = Tensor::zeros(&[1, 3, 32, 32]);
        let all = det.detect(&image, 0.0);
        let none = det.detect(&image, 1.1);
        assert!(all.len() >= none.len());
        assert!(none.is_empty());
    }
}
