//! Decoding the detector's raw grid output into detections.

use rustfi_tensor::Tensor;

/// A decoded detection in normalized image coordinates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Detection {
    /// Predicted class.
    pub class: usize,
    /// Detection score: objectness × class probability.
    pub score: f32,
    /// Box center x in `[0, 1]`.
    pub cx: f32,
    /// Box center y in `[0, 1]`.
    pub cy: f32,
    /// Box width in `[0, 1]`.
    pub w: f32,
    /// Box height in `[0, 1]`.
    pub h: f32,
}

/// Numerically safe logistic sigmoid.
pub fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Decodes one batch element of a raw head output `[n, 5 + classes, s, s]`
/// into per-cell detections (before thresholding/NMS).
///
/// Channel layout per cell: `[tx, ty, tw, th, obj, class scores...]`.
/// `tx, ty` are sigmoid offsets within the cell; `tw, th` are sigmoid
/// fractions of the whole image; `obj` is sigmoid objectness; class scores
/// pass through a softmax.
///
/// # Panics
///
/// Panics if the tensor is not rank 4, `batch` is out of range, or the
/// channel count is less than 6.
pub fn decode_grid(raw: &Tensor, batch: usize, num_classes: usize) -> Vec<Detection> {
    let (n, ch, s, s2) = raw.dims4();
    assert!(batch < n, "batch {batch} out of range");
    assert_eq!(s, s2, "grid must be square");
    assert_eq!(
        ch,
        5 + num_classes,
        "expected {} channels, got {ch}",
        5 + num_classes
    );
    let mut out = Vec::with_capacity(s * s);
    for gy in 0..s {
        for gx in 0..s {
            let read = |c: usize| raw.at(&[batch, c, gy, gx]);
            let tx = sigmoid(read(0));
            let ty = sigmoid(read(1));
            let w = sigmoid(read(2));
            let h = sigmoid(read(3));
            let obj = sigmoid(read(4));
            // Softmax over class logits.
            let mut logits = Vec::with_capacity(num_classes);
            for c in 0..num_classes {
                logits.push(read(5 + c));
            }
            let m = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let exps: Vec<f32> = logits.iter().map(|&v| (v - m).exp()).collect();
            let denom: f32 = exps.iter().sum();
            let (class, best) = exps
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                .expect("at least one class");
            let class_prob = best / denom;

            out.push(Detection {
                class,
                score: obj * class_prob,
                cx: (gx as f32 + tx) / s as f32,
                cy: (gy as f32 + ty) / s as f32,
                w,
                h,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_basics() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-6);
        assert!(sigmoid(20.0) > 0.999);
        assert!(sigmoid(-20.0) < 0.001);
        // Stability at extremes.
        assert!(sigmoid(1000.0).is_finite());
        assert!(sigmoid(-1000.0).is_finite());
    }

    #[test]
    fn decode_produces_one_candidate_per_cell() {
        let raw = Tensor::zeros(&[1, 8, 4, 4]);
        let dets = decode_grid(&raw, 0, 3);
        assert_eq!(dets.len(), 16);
        // All-zero logits: obj = 0.5, class prob = 1/3.
        for d in &dets {
            assert!((d.score - 0.5 / 3.0).abs() < 1e-5);
            assert!((0.0..=1.0).contains(&d.cx) && (0.0..=1.0).contains(&d.cy));
            assert!((d.w - 0.5).abs() < 1e-6);
        }
    }

    #[test]
    fn decode_centers_land_in_their_cells() {
        let mut raw = Tensor::zeros(&[1, 8, 4, 4]);
        // Strong positive tx in cell (2, 3): center near the right edge of
        // that cell.
        raw.set(&[0, 0, 2, 3], 10.0);
        let dets = decode_grid(&raw, 0, 3);
        let d = dets[2 * 4 + 3];
        assert!(d.cx > 3.9 / 4.0 && d.cx <= 1.0, "cx {}", d.cx);
        assert!(d.cy > 2.0 / 4.0 && d.cy < 2.9 / 4.0, "cy {}", d.cy);
    }

    #[test]
    fn decode_picks_max_class() {
        let mut raw = Tensor::zeros(&[1, 8, 2, 2]);
        raw.set(&[0, 5 + 2, 0, 0], 5.0);
        let dets = decode_grid(&raw, 0, 3);
        assert_eq!(dets[0].class, 2);
        assert!(dets[0].score > 0.4, "confident class raises score");
    }

    #[test]
    fn inflated_objectness_inflates_score() {
        // The phantom-object mechanism: a huge activation in the objectness
        // channel makes a background cell look like a confident detection.
        let mut raw = Tensor::zeros(&[1, 8, 2, 2]);
        raw.set(&[0, 4, 1, 1], 10_000.0);
        let dets = decode_grid(&raw, 0, 3);
        assert!(dets[3].score > 0.33);
        assert!(dets[0].score < 0.2);
    }

    #[test]
    #[should_panic(expected = "expected 8 channels")]
    fn decode_rejects_wrong_channel_count() {
        decode_grid(&Tensor::zeros(&[1, 7, 2, 2]), 0, 3);
    }
}
