//! Intersection-over-union and non-maximum suppression.

use crate::decode::Detection;

/// Intersection-over-union of two center-format boxes.
pub fn iou(a: &Detection, b: &Detection) -> f32 {
    let ax0 = a.cx - a.w / 2.0;
    let ay0 = a.cy - a.h / 2.0;
    let ax1 = a.cx + a.w / 2.0;
    let ay1 = a.cy + a.h / 2.0;
    let bx0 = b.cx - b.w / 2.0;
    let by0 = b.cy - b.h / 2.0;
    let bx1 = b.cx + b.w / 2.0;
    let by1 = b.cy + b.h / 2.0;
    let ix = (ax1.min(bx1) - ax0.max(bx0)).max(0.0);
    let iy = (ay1.min(by1) - ay0.max(by0)).max(0.0);
    let inter = ix * iy;
    let union = (ax1 - ax0) * (ay1 - ay0) + (bx1 - bx0) * (by1 - by0) - inter;
    if union <= 0.0 {
        0.0
    } else {
        inter / union
    }
}

/// Greedy non-maximum suppression: keeps the highest-scoring detection and
/// drops same-class detections overlapping it by more than `iou_threshold`.
pub fn nms(mut detections: Vec<Detection>, iou_threshold: f32) -> Vec<Detection> {
    detections.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut kept: Vec<Detection> = Vec::new();
    for d in detections {
        if kept
            .iter()
            .all(|k| k.class != d.class || iou(k, &d) <= iou_threshold)
        {
            kept.push(d);
        }
    }
    kept
}

#[cfg(test)]
mod tests {
    use super::*;

    fn det(class: usize, score: f32, cx: f32, cy: f32, w: f32, h: f32) -> Detection {
        Detection {
            class,
            score,
            cx,
            cy,
            w,
            h,
        }
    }

    #[test]
    fn iou_identical_boxes_is_one() {
        let a = det(0, 1.0, 0.5, 0.5, 0.2, 0.2);
        assert!((iou(&a, &a) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn iou_disjoint_boxes_is_zero() {
        let a = det(0, 1.0, 0.2, 0.2, 0.2, 0.2);
        let b = det(0, 1.0, 0.8, 0.8, 0.2, 0.2);
        assert_eq!(iou(&a, &b), 0.0);
    }

    #[test]
    fn iou_half_overlap() {
        let a = det(0, 1.0, 0.25, 0.5, 0.5, 0.5);
        let b = det(0, 1.0, 0.5, 0.5, 0.5, 0.5);
        // Intersection 0.25x0.5, union 0.5*0.5*2 - 0.125 = 0.375.
        assert!((iou(&a, &b) - 1.0 / 3.0).abs() < 1e-5);
    }

    #[test]
    fn iou_is_symmetric() {
        let a = det(0, 1.0, 0.3, 0.4, 0.3, 0.2);
        let b = det(0, 1.0, 0.4, 0.45, 0.25, 0.3);
        assert!((iou(&a, &b) - iou(&b, &a)).abs() < 1e-7);
    }

    #[test]
    fn nms_suppresses_overlapping_same_class() {
        let dets = vec![
            det(0, 0.9, 0.5, 0.5, 0.3, 0.3),
            det(0, 0.8, 0.52, 0.5, 0.3, 0.3), // heavy overlap, same class
            det(0, 0.7, 0.1, 0.1, 0.1, 0.1),  // far away
        ];
        let kept = nms(dets, 0.5);
        assert_eq!(kept.len(), 2);
        assert!((kept[0].score - 0.9).abs() < 1e-6);
        assert!((kept[1].score - 0.7).abs() < 1e-6);
    }

    #[test]
    fn nms_keeps_overlapping_different_classes() {
        let dets = vec![
            det(0, 0.9, 0.5, 0.5, 0.3, 0.3),
            det(1, 0.8, 0.5, 0.5, 0.3, 0.3),
        ];
        assert_eq!(nms(dets, 0.5).len(), 2);
    }

    #[test]
    fn nms_of_empty_is_empty() {
        assert!(nms(Vec::new(), 0.5).is_empty());
    }

    #[test]
    fn nms_orders_by_score() {
        let dets = vec![
            det(0, 0.2, 0.1, 0.1, 0.05, 0.05),
            det(1, 0.9, 0.9, 0.9, 0.05, 0.05),
            det(2, 0.5, 0.5, 0.5, 0.05, 0.05),
        ];
        let kept = nms(dets, 0.5);
        assert!(kept[0].score >= kept[1].score && kept[1].score >= kept[2].score);
    }
}
