//! Detection quality metrics: per-class average precision and mAP.
//!
//! The paper's Fig. 5 is qualitative; quantifying how much a fault-injection
//! campaign degrades a detector needs a scalar quality metric. This module
//! implements the standard interpolated average-precision computation over a
//! set of scenes (PASCAL-style, single IoU threshold).

use crate::decode::Detection;
use crate::nms::iou;
use rustfi_data::GroundTruth;

/// One evaluated scene: its detections and its ground truth.
#[derive(Debug, Clone)]
pub struct SceneEval {
    /// Detections produced for the scene (any order).
    pub detections: Vec<Detection>,
    /// The scene's ground-truth objects.
    pub ground_truth: Vec<GroundTruth>,
}

fn gt_as_detection(gt: &GroundTruth) -> Detection {
    Detection {
        class: gt.class,
        score: 1.0,
        cx: gt.cx,
        cy: gt.cy,
        w: gt.w,
        h: gt.h,
    }
}

/// Average precision for one class over a set of scenes at the given IoU
/// threshold. Returns `None` when the class has no ground-truth instances.
pub fn average_precision(scenes: &[SceneEval], class: usize, iou_threshold: f32) -> Option<f32> {
    let total_gt: usize = scenes
        .iter()
        .map(|s| s.ground_truth.iter().filter(|g| g.class == class).count())
        .sum();
    if total_gt == 0 {
        return None;
    }

    // Gather all detections of this class with a scene tag, sorted by score.
    let mut dets: Vec<(usize, &Detection)> = Vec::new();
    for (si, scene) in scenes.iter().enumerate() {
        for d in scene.detections.iter().filter(|d| d.class == class) {
            dets.push((si, d));
        }
    }
    dets.sort_by(|a, b| {
        b.1.score
            .partial_cmp(&a.1.score)
            .unwrap_or(std::cmp::Ordering::Equal)
    });

    // Greedy matching per scene; each ground truth matches once.
    let mut taken: Vec<Vec<bool>> = scenes
        .iter()
        .map(|s| vec![false; s.ground_truth.len()])
        .collect();
    let mut tp = 0usize;
    let mut fp = 0usize;
    let mut curve: Vec<(f32, f32)> = Vec::with_capacity(dets.len()); // (recall, precision)
    for (si, d) in dets {
        let scene = &scenes[si];
        let mut best: Option<(usize, f32)> = None;
        for (gi, gt) in scene.ground_truth.iter().enumerate() {
            if gt.class != class || taken[si][gi] {
                continue;
            }
            let overlap = iou(d, &gt_as_detection(gt));
            if overlap >= iou_threshold && best.is_none_or(|(_, b)| overlap > b) {
                best = Some((gi, overlap));
            }
        }
        match best {
            Some((gi, _)) => {
                taken[si][gi] = true;
                tp += 1;
            }
            None => fp += 1,
        }
        curve.push((tp as f32 / total_gt as f32, tp as f32 / (tp + fp) as f32));
    }

    // Interpolated AP: precision envelope integrated over recall.
    let mut ap = 0.0;
    let mut prev_recall = 0.0;
    for i in 0..curve.len() {
        let max_prec = curve[i..].iter().map(|&(_, p)| p).fold(0.0f32, f32::max);
        let (recall, _) = curve[i];
        ap += (recall - prev_recall) * max_prec;
        prev_recall = recall;
    }
    Some(ap)
}

/// Mean average precision over all classes that appear in the ground truth.
///
/// Returns 0 when no ground truth exists at all.
pub fn mean_average_precision(scenes: &[SceneEval], num_classes: usize, iou_threshold: f32) -> f32 {
    let mut sum = 0.0;
    let mut counted = 0;
    for class in 0..num_classes {
        if let Some(ap) = average_precision(scenes, class, iou_threshold) {
            sum += ap;
            counted += 1;
        }
    }
    if counted == 0 {
        0.0
    } else {
        sum / counted as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gt(class: usize, cx: f32, cy: f32) -> GroundTruth {
        GroundTruth {
            class,
            cx,
            cy,
            w: 0.2,
            h: 0.2,
        }
    }

    fn det(class: usize, score: f32, cx: f32, cy: f32) -> Detection {
        Detection {
            class,
            score,
            cx,
            cy,
            w: 0.2,
            h: 0.2,
        }
    }

    #[test]
    fn perfect_detections_give_ap_one() {
        let scenes = vec![SceneEval {
            detections: vec![det(0, 0.9, 0.3, 0.3), det(0, 0.8, 0.7, 0.7)],
            ground_truth: vec![gt(0, 0.3, 0.3), gt(0, 0.7, 0.7)],
        }];
        let ap = average_precision(&scenes, 0, 0.5).unwrap();
        assert!((ap - 1.0).abs() < 1e-6, "ap {ap}");
    }

    #[test]
    fn missing_everything_gives_ap_zero() {
        let scenes = vec![SceneEval {
            detections: vec![],
            ground_truth: vec![gt(0, 0.3, 0.3)],
        }];
        assert_eq!(average_precision(&scenes, 0, 0.5), Some(0.0));
    }

    #[test]
    fn class_without_ground_truth_is_none() {
        let scenes = vec![SceneEval {
            detections: vec![det(1, 0.9, 0.5, 0.5)],
            ground_truth: vec![gt(0, 0.5, 0.5)],
        }];
        assert_eq!(average_precision(&scenes, 1, 0.5), None);
    }

    #[test]
    fn phantom_detections_lower_ap() {
        let clean = vec![SceneEval {
            detections: vec![det(0, 0.9, 0.3, 0.3)],
            ground_truth: vec![gt(0, 0.3, 0.3)],
        }];
        // A higher-scoring phantom ahead of the true detection drags
        // precision down before the recall point.
        let noisy = vec![SceneEval {
            detections: vec![det(0, 0.95, 0.8, 0.8), det(0, 0.9, 0.3, 0.3)],
            ground_truth: vec![gt(0, 0.3, 0.3)],
        }];
        let ap_clean = average_precision(&clean, 0, 0.5).unwrap();
        let ap_noisy = average_precision(&noisy, 0, 0.5).unwrap();
        assert!(ap_noisy < ap_clean, "{ap_noisy} < {ap_clean}");
    }

    #[test]
    fn duplicate_detections_count_as_false_positives() {
        let scenes = vec![SceneEval {
            detections: vec![det(0, 0.9, 0.3, 0.3), det(0, 0.85, 0.31, 0.3)],
            ground_truth: vec![gt(0, 0.3, 0.3)],
        }];
        let ap = average_precision(&scenes, 0, 0.3).unwrap();
        // Recall 1.0 reached with the first detection at precision 1.0.
        assert!((ap - 1.0).abs() < 1e-6);
        // But the duplicate does hurt if it outranks the good one.
        let scenes = vec![SceneEval {
            detections: vec![det(0, 0.95, 0.9, 0.9), det(0, 0.85, 0.3, 0.3)],
            ground_truth: vec![gt(0, 0.3, 0.3)],
        }];
        let ap = average_precision(&scenes, 0, 0.3).unwrap();
        assert!((ap - 0.5).abs() < 1e-6, "ap {ap}");
    }

    #[test]
    fn map_averages_over_present_classes() {
        let scenes = vec![SceneEval {
            detections: vec![det(0, 0.9, 0.3, 0.3)], // class 0 perfect
            ground_truth: vec![gt(0, 0.3, 0.3), gt(1, 0.7, 0.7)], // class 1 missed
        }];
        let map = mean_average_precision(&scenes, 3, 0.5);
        assert!(
            (map - 0.5).abs() < 1e-6,
            "mean of 1.0 and 0.0; class 2 absent"
        );
    }

    #[test]
    fn map_of_empty_world_is_zero() {
        assert_eq!(mean_average_precision(&[], 3, 0.5), 0.0);
    }
}
