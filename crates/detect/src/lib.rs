//! # rustfi-detect
//!
//! A YOLO-style single-shot object detector built on [`rustfi_nn`], used by
//! the RustFI reproduction of PyTorchFI's object-detection resiliency study
//! (paper §IV-B / Fig. 5).
//!
//! The detector divides the image into an `S × S` grid; each cell predicts
//! one box (center offset, size, objectness) and per-class scores, decoded
//! with sigmoids and cleaned up with non-maximum suppression — the same
//! decode structure that makes YOLO's outputs sensitive to large activation
//! corruptions: an inflated objectness logit anywhere in the head manifests
//! as a *phantom detection*.
//!
//! # Example
//!
//! ```
//! use rustfi_detect::{YoloLite, DetectorConfig};
//! use rustfi_data::DetectionSpec;
//!
//! let scenes = DetectionSpec::coco_like().generate(4);
//! let mut det = YoloLite::new(&DetectorConfig::default());
//! // Untrained detections are garbage but structurally valid:
//! let dets = det.detect(&scenes[0].image, 0.5);
//! for d in &dets {
//!     assert!(d.cx >= 0.0 && d.cx <= 1.0);
//! }
//! ```

pub mod decode;
pub mod diff;
pub mod map;
pub mod model;
pub mod nms;

pub use decode::{decode_grid, Detection};
pub use diff::{diff_detections, DetectionDiff};
pub use map::{average_precision, mean_average_precision, SceneEval};
pub use model::{DetectorConfig, TrainDetectorConfig, YoloLite};
pub use nms::{iou, nms};
