//! Comparing detections against ground truth (and against a clean run) to
//! count phantom, missed, and misclassified objects.

use crate::decode::Detection;
use crate::nms::iou;
use rustfi_data::GroundTruth;

/// Result of matching a detection list against ground truth.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DetectionDiff {
    /// Detections matching a ground-truth object (right class, IoU above the
    /// threshold).
    pub matched: usize,
    /// Detections overlapping an object but with the wrong class.
    pub misclassified: usize,
    /// Detections overlapping nothing — phantom objects.
    pub phantom: usize,
    /// Ground-truth objects with no matching detection.
    pub missed: usize,
}

fn as_detection(gt: &GroundTruth) -> Detection {
    Detection {
        class: gt.class,
        score: 1.0,
        cx: gt.cx,
        cy: gt.cy,
        w: gt.w,
        h: gt.h,
    }
}

/// Greedily matches detections (highest score first) to ground-truth boxes
/// and tallies the differences.
pub fn diff_detections(
    detections: &[Detection],
    ground_truth: &[GroundTruth],
    iou_threshold: f32,
) -> DetectionDiff {
    let mut diff = DetectionDiff::default();
    let mut taken = vec![false; ground_truth.len()];
    let mut order: Vec<usize> = (0..detections.len()).collect();
    order.sort_by(|&a, &b| {
        detections[b]
            .score
            .partial_cmp(&detections[a].score)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    for di in order {
        let d = &detections[di];
        // Best unmatched ground-truth overlap.
        let mut best: Option<(usize, f32)> = None;
        for (gi, gt) in ground_truth.iter().enumerate() {
            if taken[gi] {
                continue;
            }
            let overlap = iou(d, &as_detection(gt));
            if overlap >= iou_threshold && best.is_none_or(|(_, b)| overlap > b) {
                best = Some((gi, overlap));
            }
        }
        match best {
            Some((gi, _)) => {
                taken[gi] = true;
                if ground_truth[gi].class == d.class {
                    diff.matched += 1;
                } else {
                    diff.misclassified += 1;
                }
            }
            None => diff.phantom += 1,
        }
    }
    diff.missed = taken.iter().filter(|&&t| !t).count();
    diff
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gt(class: usize, cx: f32, cy: f32, s: f32) -> GroundTruth {
        GroundTruth {
            class,
            cx,
            cy,
            w: s,
            h: s,
        }
    }

    fn det(class: usize, score: f32, cx: f32, cy: f32, s: f32) -> Detection {
        Detection {
            class,
            score,
            cx,
            cy,
            w: s,
            h: s,
        }
    }

    #[test]
    fn perfect_match() {
        let gts = [gt(1, 0.5, 0.5, 0.2)];
        let dets = [det(1, 0.9, 0.5, 0.5, 0.2)];
        let d = diff_detections(&dets, &gts, 0.5);
        assert_eq!(
            d,
            DetectionDiff {
                matched: 1,
                misclassified: 0,
                phantom: 0,
                missed: 0
            }
        );
    }

    #[test]
    fn wrong_class_is_misclassified() {
        let gts = [gt(1, 0.5, 0.5, 0.2)];
        let dets = [det(0, 0.9, 0.5, 0.5, 0.2)];
        let d = diff_detections(&dets, &gts, 0.5);
        assert_eq!(d.misclassified, 1);
        assert_eq!(d.missed, 0);
    }

    #[test]
    fn far_detection_is_phantom() {
        let gts = [gt(1, 0.2, 0.2, 0.2)];
        let dets = [det(1, 0.9, 0.8, 0.8, 0.2)];
        let d = diff_detections(&dets, &gts, 0.5);
        assert_eq!(d.phantom, 1);
        assert_eq!(d.missed, 1);
    }

    #[test]
    fn unmatched_gt_is_missed() {
        let gts = [gt(0, 0.3, 0.3, 0.2), gt(1, 0.7, 0.7, 0.2)];
        let dets = [det(0, 0.9, 0.3, 0.3, 0.2)];
        let d = diff_detections(&dets, &gts, 0.5);
        assert_eq!(d.matched, 1);
        assert_eq!(d.missed, 1);
    }

    #[test]
    fn each_gt_matches_at_most_once() {
        let gts = [gt(0, 0.5, 0.5, 0.2)];
        let dets = [
            det(0, 0.9, 0.5, 0.5, 0.2),
            det(0, 0.8, 0.51, 0.5, 0.2), // duplicate: becomes phantom
        ];
        let d = diff_detections(&dets, &gts, 0.3);
        assert_eq!(d.matched, 1);
        assert_eq!(d.phantom, 1);
    }

    #[test]
    fn empty_inputs() {
        let d = diff_detections(&[], &[], 0.5);
        assert_eq!(d, DetectionDiff::default());
        let d = diff_detections(&[], &[gt(0, 0.5, 0.5, 0.2)], 0.5);
        assert_eq!(d.missed, 1);
    }
}
