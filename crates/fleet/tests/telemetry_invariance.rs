//! The workspace-wide "recorders never perturb campaign results" invariant,
//! extended to sidecar-enabled *fleet* runs: a sharded campaign whose
//! workers stream telemetry sidecars and keep flight-recorder postmortems
//! merges to records bit-identical to the same fleet run unobserved.
//!
//! This is the property that makes `orchestrate --trace` free to recommend:
//! turning fleet observability on cannot change a single merged record.

use proptest::prelude::*;
use rustfi::shard::{merge_shard_journals, plan_shards};
use rustfi::{metrics, models, Campaign, CampaignConfig, FaultMode, NeuronSelect};
use rustfi_fleet::{run_shard_worker, run_shard_worker_observed};
use rustfi_nn::{zoo, Network, ZooConfig};
use rustfi_obs::{read_sidecar, sidecar_path};
use rustfi_tensor::Tensor;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

fn tiny_lenet() -> Network {
    zoo::lenet(&ZooConfig::tiny(4))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn sidecar_enabled_fleet_runs_merge_identically(seed in any::<u64>(), shards in 1usize..4) {
        let trials = 10;
        let images = Tensor::from_fn(&[4, 3, 16, 16], |i| ((i as f32) * 0.013).sin());
        let mut probe = tiny_lenet();
        let labels: Vec<usize> = (0..images.dims()[0])
            .map(|i| metrics::top1(probe.forward(&images.select_batch(i)).data()))
            .collect();
        let campaign = Campaign::new(
            &tiny_lenet,
            &images,
            &labels,
            FaultMode::Neuron(NeuronSelect::Random),
            // Exponent-bit flips mix masked/SDC/DUE, covering every
            // classification path the telemetry stream reports on.
            Arc::new(models::BitFlipFp32::new(models::BitSelect::Random)),
        );
        let cfg = CampaignConfig {
            trials,
            seed,
            threads: Some(2),
            guard: rustfi::GuardMode::Record,
            ..CampaignConfig::default()
        };

        let base = std::env::temp_dir().join(format!(
            "rustfi_fleet_inv_{}_{seed:x}_{shards}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&base);
        let plan = plan_shards(trials, shards);
        let run = |tag: &str, observed: bool| -> Vec<PathBuf> {
            let dir = base.join(tag);
            std::fs::create_dir_all(&dir).unwrap();
            plan.iter()
                .map(|spec| {
                    let journal = spec.journal_path(&dir);
                    let every = Duration::from_millis(50);
                    if observed {
                        run_shard_worker_observed(&campaign, &cfg, spec, &journal, 0, every)
                    } else {
                        run_shard_worker(&campaign, &cfg, spec, &journal, every)
                    }
                    .unwrap();
                    journal
                })
                .collect()
        };

        let plain = merge_shard_journals(&run("plain", false)).unwrap();
        let observed_journals = run("observed", true);
        let observed = merge_shard_journals(&observed_journals).unwrap();
        prop_assert!(plain.is_complete());
        prop_assert!(observed.is_complete());
        prop_assert_eq!(&plain.records, &observed.records,
            "telemetry perturbed the merged fleet records");
        prop_assert_eq!(plain.counts, observed.counts);

        // The telemetry itself landed: every observed shard's sidecar reads
        // back clean and saw its share of the trial outcomes.
        let mut outcomes = 0usize;
        for (spec, journal) in plan.iter().zip(&observed_journals) {
            let sc = read_sidecar(&sidecar_path(journal, 0)).unwrap();
            prop_assert_eq!(sc.torn_lines, 0);
            prop_assert_eq!(sc.header.shard, spec.index);
            outcomes += sc
                .batch
                .events
                .iter()
                .filter(|e| matches!(e, rustfi_obs::Event::TrialOutcome(_)))
                .count();
        }
        prop_assert_eq!(outcomes, trials, "one outcome event per trial, fleet-wide");
        std::fs::remove_dir_all(&base).ok();
    }
}
