//! Environment-driven campaign construction shared by the fleet binaries.
//!
//! The orchestrator and its re-executed workers are separate processes that
//! must agree *exactly* on the campaign — same model weights, images,
//! labels, and every record-affecting knob — or the config fingerprint in
//! the shard journals will (correctly) refuse to merge. Everything here is
//! a pure function of environment variables and fixed seeds, so each
//! process reconstructs the identical campaign independently: zoo models
//! initialize from a seed, images are synthesized from a fixed formula, and
//! labels are the untrained model's own clean predictions (making every
//! image campaign-eligible without a training run, like the
//! `profile_campaign` bench does).
//!
//! Knobs: `RUSTFI_MODEL` (default `lenet`), `RUSTFI_TRIALS` (default 96),
//! `RUSTFI_SEED`, `RUSTFI_IMAGES` (default 6), `RUSTFI_FUSION` (fused batch
//! width, `0`/`1` disables, default 8), `RUSTFI_THREADS` (per worker).

use rustfi::{models, Campaign, CampaignConfig, FaultMode, FusionConfig, NeuronSelect};
use rustfi_nn::{train, zoo, Network, ZooConfig};
use rustfi_tensor::Tensor;
use std::sync::Arc;

/// Reads a usize knob from the environment.
pub fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Reads a u64 knob from the environment.
pub fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The fixture every fleet process rebuilds identically from the
/// environment: model factory inputs, images, and aligned labels.
pub struct Testbed {
    model: String,
    zoo_cfg: ZooConfig,
    /// Synthetic test images.
    pub images: Tensor,
    /// The untrained model's own predictions, so all images are eligible.
    pub labels: Vec<usize>,
}

impl Testbed {
    /// Builds the fixture from `RUSTFI_MODEL` / `RUSTFI_IMAGES`.
    pub fn from_env() -> Self {
        let model = std::env::var("RUSTFI_MODEL").unwrap_or_else(|_| String::from("lenet"));
        let zoo_cfg = ZooConfig::tiny(8);
        let n = env_usize("RUSTFI_IMAGES", 6);
        let images = Tensor::from_fn(
            &[n, zoo_cfg.in_channels, zoo_cfg.image_hw, zoo_cfg.image_hw],
            |i| ((i as f32) * 0.017).sin(),
        );
        let mut net = build(&model, &zoo_cfg);
        let labels = train::predict(&mut net, &images, n);
        Self {
            model,
            zoo_cfg,
            images,
            labels,
        }
    }

    /// The model factory closure [`Campaign::new`] borrows.
    pub fn factory(&self) -> impl Fn() -> Network + Sync + '_ {
        move || build(&self.model, &self.zoo_cfg)
    }

    /// The campaign config every fleet process agrees on, from
    /// `RUSTFI_TRIALS` / `RUSTFI_SEED` / `RUSTFI_FUSION` / `RUSTFI_THREADS`.
    pub fn campaign_config(&self) -> CampaignConfig {
        let fusion = env_usize("RUSTFI_FUSION", 8);
        CampaignConfig {
            trials: env_usize("RUSTFI_TRIALS", 96),
            seed: env_u64("RUSTFI_SEED", 0xF1EE7),
            threads: std::env::var("RUSTFI_THREADS")
                .ok()
                .and_then(|v| v.parse().ok()),
            fusion: (fusion >= 2).then(|| FusionConfig::with_width(fusion)),
            ..CampaignConfig::default()
        }
    }

    /// The campaign over this fixture: random-neuron FP32 bit flips, the
    /// paper's flagship mode.
    pub fn campaign<'a>(&'a self, factory: &'a (dyn Fn() -> Network + Sync)) -> Campaign<'a> {
        Campaign::new(
            factory,
            &self.images,
            &self.labels,
            FaultMode::Neuron(NeuronSelect::Random),
            Arc::new(models::BitFlipFp32::new(models::BitSelect::Random)),
        )
    }
}

fn build(model: &str, cfg: &ZooConfig) -> Network {
    zoo::by_name(model, cfg).unwrap_or_else(|| panic!("unknown model {model}"))
}
