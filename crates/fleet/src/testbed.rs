//! Environment-driven campaign construction shared by the fleet binaries.
//!
//! The orchestrator and its re-executed workers are separate processes that
//! must agree *exactly* on the campaign — same model weights, images,
//! labels, and every record-affecting knob — or the config fingerprint in
//! the shard journals will (correctly) refuse to merge. Everything here is
//! a pure function of environment variables and fixed seeds, so each
//! process reconstructs the identical campaign independently: zoo models
//! initialize from a seed, images are synthesized from a fixed formula, and
//! labels are the untrained model's own clean predictions (making every
//! image campaign-eligible without a training run, like the
//! `profile_campaign` bench does).
//!
//! Knobs: `RUSTFI_MODEL` (default `lenet`; `fuzz:<seed>` samples a random
//! architecture from the differential fuzzer's generator — the same network
//! `rustfi_bench::fuzz::FuzzCase::sample(seed)` fuzzes, so a fuzz failure
//! can be re-run as a distributed fleet), `RUSTFI_TRIALS` (default 96),
//! `RUSTFI_SEED`, `RUSTFI_IMAGES` (default 6), `RUSTFI_FUSION` (fused batch
//! width, `0`/`1` disables, default 8), `RUSTFI_THREADS` (per worker).

use rustfi::{models, Campaign, CampaignConfig, FaultMode, FusionConfig, NeuronSelect};
use rustfi_nn::zoo::random::{ArchSpec, ForcedTopology};
use rustfi_nn::{train, zoo, Network, ZooConfig};
use rustfi_tensor::{SeededRng, Tensor};
use std::sync::Arc;

/// Reads a usize knob from the environment.
pub fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Reads a u64 knob from the environment.
pub fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Which model family `RUSTFI_MODEL` selected.
enum ModelSpec {
    /// A named zoo architecture (`lenet`, `vgg19`, …).
    Zoo { name: String, cfg: ZooConfig },
    /// A fuzzer-generated architecture (`fuzz:<seed>`), sampled exactly as
    /// `rustfi_bench::fuzz::FuzzCase::sample(seed)` derives its network
    /// (architecture stream = `SeededRng::new(seed).fork(1)`).
    Fuzz { arch: ArchSpec },
}

impl ModelSpec {
    fn parse(model: &str) -> Self {
        if let Some(raw) = model.strip_prefix("fuzz:") {
            let raw = raw.trim();
            let seed = if let Some(hex) = raw.strip_prefix("0x") {
                u64::from_str_radix(hex, 16).ok()
            } else {
                raw.parse().ok()
            }
            .unwrap_or_else(|| panic!("bad fuzz seed in RUSTFI_MODEL={model}"));
            let arch =
                ArchSpec::sample_with(&mut SeededRng::new(seed).fork(1), ForcedTopology::default());
            ModelSpec::Fuzz { arch }
        } else {
            ModelSpec::Zoo {
                name: model.to_string(),
                cfg: ZooConfig::tiny(8),
            }
        }
    }

    fn build(&self) -> Network {
        match self {
            ModelSpec::Zoo { name, cfg } => {
                zoo::by_name(name, cfg).unwrap_or_else(|| panic!("unknown model {name}"))
            }
            ModelSpec::Fuzz { arch } => arch.build(),
        }
    }

    /// `[C, H, W]` of one input image.
    fn image_dims(&self) -> [usize; 3] {
        match self {
            ModelSpec::Zoo { cfg, .. } => [cfg.in_channels, cfg.image_hw, cfg.image_hw],
            ModelSpec::Fuzz { arch } => [arch.in_channels, arch.image_hw, arch.image_hw],
        }
    }
}

/// The fixture every fleet process rebuilds identically from the
/// environment: model factory inputs, images, and aligned labels.
pub struct Testbed {
    spec: ModelSpec,
    /// Synthetic test images.
    pub images: Tensor,
    /// The untrained model's own predictions, so all images are eligible.
    pub labels: Vec<usize>,
}

impl Testbed {
    /// Builds the fixture from `RUSTFI_MODEL` / `RUSTFI_IMAGES`.
    pub fn from_env() -> Self {
        let model = std::env::var("RUSTFI_MODEL").unwrap_or_else(|_| String::from("lenet"));
        let spec = ModelSpec::parse(&model);
        let n = env_usize("RUSTFI_IMAGES", 6);
        let [c, h, w] = spec.image_dims();
        let images = Tensor::from_fn(&[n, c, h, w], |i| ((i as f32) * 0.017).sin());
        let mut net = spec.build();
        let labels = train::predict(&mut net, &images, n);
        Self {
            spec,
            images,
            labels,
        }
    }

    /// The model factory closure [`Campaign::new`] borrows.
    pub fn factory(&self) -> impl Fn() -> Network + Sync + '_ {
        move || self.spec.build()
    }

    /// The campaign config every fleet process agrees on, from
    /// `RUSTFI_TRIALS` / `RUSTFI_SEED` / `RUSTFI_FUSION` / `RUSTFI_THREADS`.
    pub fn campaign_config(&self) -> CampaignConfig {
        let fusion = env_usize("RUSTFI_FUSION", 8);
        CampaignConfig {
            trials: env_usize("RUSTFI_TRIALS", 96),
            seed: env_u64("RUSTFI_SEED", 0xF1EE7),
            threads: std::env::var("RUSTFI_THREADS")
                .ok()
                .and_then(|v| v.parse().ok()),
            fusion: (fusion >= 2).then(|| FusionConfig::with_width(fusion)),
            ..CampaignConfig::default()
        }
    }

    /// The campaign over this fixture: random-neuron FP32 bit flips, the
    /// paper's flagship mode.
    pub fn campaign<'a>(&'a self, factory: &'a (dyn Fn() -> Network + Sync)) -> Campaign<'a> {
        Campaign::new(
            factory,
            &self.images,
            &self.labels,
            FaultMode::Neuron(NeuronSelect::Random),
            Arc::new(models::BitFlipFp32::new(models::BitSelect::Random)),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fuzz_model_spec_is_deterministic_and_buildable() {
        let a = ModelSpec::parse("fuzz:1234");
        let b = ModelSpec::parse("fuzz:0x4d2");
        let (ModelSpec::Fuzz { arch: ref aa }, ModelSpec::Fuzz { arch: ref ab }) = (&a, &b) else {
            panic!("expected fuzz specs");
        };
        assert_eq!(aa, ab, "decimal and hex seeds parse to the same arch");
        let [c, h, w] = a.image_dims();
        let mut net = a.build();
        let y = net.forward(&Tensor::zeros(&[2, c, h, w]));
        assert_eq!(y.dims()[0], 2);
    }

    #[test]
    fn zoo_model_spec_still_builds() {
        let spec = ModelSpec::parse("lenet");
        let [c, h, w] = spec.image_dims();
        let mut net = spec.build();
        let y = net.forward(&Tensor::zeros(&[1, c, h, w]));
        assert_eq!(y.dims()[0], 1);
    }
}
