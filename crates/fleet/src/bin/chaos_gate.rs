//! CI chaos gate: proves the fleet's crash story end to end.
//!
//! Two legs, both against the same single-process reference run and both
//! with fleet telemetry on (sidecars + flight recorders):
//!
//! 1. **kill leg** — a 4-shard fleet where the orchestrator SIGKILLs one
//!    worker mid-run (after it has journaled a few records). The gate
//!    asserts the death was detected, the shard restarted with backoff and
//!    resumed from its torn journal, and the merged report is
//!    **bit-identical** to the uninterrupted reference. It then asserts the
//!    telemetry survived the murder: the merged Chrome trace has a lane for
//!    every shard *and* a restart sub-lane for the victim, and the victim
//!    left a non-empty `.flight` postmortem.
//! 2. **hang leg** — one worker (first attempt only) hangs before writing a
//!    byte. The gate asserts the heartbeat deadline caught it, the restart
//!    recovered, and the merged report is again bit-identical.
//!
//! Artifacts (merged trace + flight postmortems) are copied into
//! `RUSTFI_CHAOS_ARTIFACTS` (default `chaos-artifacts/`) for CI upload.
//!
//! Exits non-zero on any violation. Run with:
//! `cargo run -p rustfi-fleet --bin chaos_gate --release`

use rustfi::shard::plan_shards;
use rustfi::ProgressRecorder;
use rustfi_fleet::testbed::Testbed;
use rustfi_fleet::{
    orchestrate, run_shard_worker_observed, worker_env, ChaosKill, FleetConfig, WorkerEnv,
    ENV_SHARD_ATTEMPT, ENV_SHARD_COUNT, ENV_SHARD_INDEX, ENV_SHARD_JOURNAL, ENV_SHARD_TELEMETRY,
};
use rustfi_obs::json::{parse_json, Value};
use rustfi_obs::read_flight;
use std::path::PathBuf;
use std::process::Command;
use std::time::Duration;

/// Shard the chaos hits, in both legs.
const VICTIM: usize = 1;
const SHARDS: usize = 4;

fn main() {
    if let Some(w) = worker_env() {
        worker_main(&w);
        return;
    }

    // The campaign every process agrees on. Fixed here (not inherited) so
    // the gate is deterministic; workers inherit these via the environment.
    // The model is the one knob the caller may override: nightly CI points
    // it at a fuzzer-generated architecture (`RUSTFI_MODEL=fuzz:<seed>`).
    if std::env::var("RUSTFI_MODEL").is_err() {
        std::env::set_var("RUSTFI_MODEL", "lenet");
    }
    std::env::set_var("RUSTFI_TRIALS", "96");
    std::env::set_var("RUSTFI_SEED", "51966");
    std::env::set_var("RUSTFI_IMAGES", "6");
    std::env::set_var("RUSTFI_FUSION", "8");
    std::env::set_var("RUSTFI_THREADS", "2");

    let artifacts = PathBuf::from(
        std::env::var("RUSTFI_CHAOS_ARTIFACTS").unwrap_or_else(|_| String::from("chaos-artifacts")),
    );
    std::fs::create_dir_all(&artifacts).expect("artifact dir");

    let tb = Testbed::from_env();
    let cfg = tb.campaign_config();
    let factory = tb.factory();
    let campaign = tb.campaign(&factory);
    println!("chaos_gate — reference run ({} trials, fused)", cfg.trials);
    let reference = campaign.run(&cfg).expect("reference run");
    assert!(
        !reference.records.is_empty(),
        "reference produced no records; the gate would be vacuous"
    );

    let exe = std::env::current_exe().expect("own executable path");
    let base = std::env::temp_dir().join(format!("rustfi-chaos-gate-{}", std::process::id()));

    // Leg 1: SIGKILL a worker mid-run; it must resume from its journal.
    let dir = base.join("kill");
    let _ = std::fs::remove_dir_all(&dir);
    let mut fleet = fleet_config(cfg.trials, dir);
    fleet.chaos_kill = Some(ChaosKill {
        shard: VICTIM,
        after_records: 4,
    });
    println!("chaos_gate — kill leg: SIGKILL shard {VICTIM} after 4 records");
    let report = orchestrate(&fleet, |spec, path, attempt| {
        let mut cmd = worker_cmd(&exe, spec.index, path, attempt);
        if spec.index == VICTIM && attempt == 0 {
            // Throttle the victim so the kill reliably lands mid-run.
            cmd.env("RUSTFI_CHAOS_SLOW_MS", "40");
        }
        cmd.spawn()
    })
    .expect("kill-leg fleet");
    assert!(
        report.restarts >= 1,
        "the killed shard was never restarted: {report:?}"
    );
    check_identical("kill leg", &reference, &report);
    check_telemetry(&report, &artifacts);

    // Leg 2: a worker hangs before writing anything; the heartbeat
    // deadline must catch it.
    let dir = base.join("hang");
    let _ = std::fs::remove_dir_all(&dir);
    let fleet = fleet_config(cfg.trials, dir);
    println!("chaos_gate — hang leg: shard {VICTIM} hangs on first attempt");
    let report = orchestrate(&fleet, |spec, path, attempt| {
        let mut cmd = worker_cmd(&exe, spec.index, path, attempt);
        if spec.index == VICTIM && attempt == 0 {
            cmd.env("RUSTFI_CHAOS_HANG", "1");
        }
        cmd.spawn()
    })
    .expect("hang-leg fleet");
    assert!(
        report.hung_kills >= 1,
        "the hung shard was never killed: {report:?}"
    );
    check_identical("hang leg", &reference, &report);

    let _ = std::fs::remove_dir_all(&base);
    println!("chaos gate PASS: merged reports bit-identical to the uninterrupted reference");
}

fn fleet_config(trials: usize, dir: PathBuf) -> FleetConfig {
    let mut fleet = FleetConfig::new(trials, SHARDS, dir);
    fleet.poll_interval = Duration::from_millis(10);
    fleet.heartbeat_timeout = Duration::from_millis(1_500);
    fleet.backoff_base = Duration::from_millis(50);
    fleet.backoff_cap = Duration::from_millis(500);
    fleet.max_restarts = 3;
    // Hard stop well under the CI job timeout; a healthy gate finishes in
    // seconds.
    fleet.deadline = Some(Duration::from_secs(120));
    fleet.progress = Some(ProgressRecorder::stderr(24));
    fleet
}

fn worker_cmd(exe: &PathBuf, index: usize, path: &std::path::Path, attempt: usize) -> Command {
    let mut cmd = Command::new(exe);
    cmd.env(ENV_SHARD_INDEX, index.to_string())
        .env(ENV_SHARD_COUNT, SHARDS.to_string())
        .env(ENV_SHARD_JOURNAL, path)
        .env(ENV_SHARD_ATTEMPT, attempt.to_string())
        .env(ENV_SHARD_TELEMETRY, "1");
    cmd
}

fn check_identical(
    leg: &str,
    reference: &rustfi::CampaignResult,
    report: &rustfi_fleet::FleetReport,
) {
    assert!(
        report.is_complete(),
        "{leg}: fleet did not complete: {report:?}"
    );
    let merged = report.merged.as_ref().expect("complete fleet has a merge");
    assert_eq!(
        merged.records.len(),
        reference.records.len(),
        "{leg}: record count"
    );
    for (m, r) in merged.records.iter().zip(&reference.records) {
        assert_eq!(m, r, "{leg}: record {} diverged", r.trial);
    }
    assert_eq!(merged.counts, reference.counts, "{leg}: outcome counts");
    println!(
        "{leg} OK: {} records bit-identical ({} spawns, {} restarts, {} hung kills, {:.2}s)",
        merged.records.len(),
        report.spawns,
        report.restarts,
        report.hung_kills,
        report.elapsed.as_secs_f64()
    );
}

/// The kill leg's telemetry assertions: a lane for every shard, a restart
/// sub-lane for the victim, a parseable merged Chrome trace, and a
/// non-empty flight postmortem for the killed shard. Copies the artifacts
/// out for CI upload.
fn check_telemetry(report: &rustfi_fleet::FleetReport, artifacts: &std::path::Path) {
    let telemetry = report
        .telemetry
        .as_ref()
        .expect("kill leg: observed workers left no telemetry sidecars");
    let shards_present = telemetry.shards_present();
    assert_eq!(
        shards_present.len(),
        SHARDS,
        "kill leg: trace is missing shard lanes: {shards_present:?}"
    );
    let victim_attempts = telemetry.attempts_for(VICTIM);
    assert!(
        victim_attempts.len() >= 2,
        "kill leg: victim shard {VICTIM} should have a restart sub-lane, got attempts {victim_attempts:?}"
    );

    // The merged trace must be valid JSON with one ph:"X" stream per lane.
    let trace_path = artifacts.join("fleet-trace.json");
    telemetry
        .write_chrome_trace(&trace_path)
        .expect("writing merged trace");
    let trace = parse_json(&std::fs::read_to_string(&trace_path).expect("reading trace back"))
        .expect("merged trace is not valid JSON");
    let events = trace
        .get("traceEvents")
        .and_then(Value::as_array)
        .expect("trace has no traceEvents array");
    assert!(!events.is_empty(), "merged trace is empty");
    let mut pids: Vec<f64> = events
        .iter()
        .filter_map(|e| e.get("pid").and_then(Value::as_f64))
        .collect();
    pids.sort_by(f64::total_cmp);
    pids.dedup();
    assert_eq!(
        pids.len(),
        SHARDS,
        "trace lanes (pids) don't cover every shard: {pids:?}"
    );

    // The victim's flight postmortem: present, parseable, non-empty.
    let (_, flight) = report
        .flights
        .iter()
        .find(|(shard, _)| *shard == VICTIM)
        .expect("kill leg: victim left no flight postmortem");
    let post = read_flight(flight).expect("victim flight postmortem unreadable");
    assert_eq!(post.shard, Some(VICTIM));
    assert!(
        post.seq > 0 && !post.entries.is_empty(),
        "victim flight postmortem is empty: seq={} entries={}",
        post.seq,
        post.entries.len()
    );
    std::fs::copy(flight, artifacts.join("victim.flight")).expect("copying flight artifact");

    println!(
        "kill leg telemetry OK: {} lanes (victim attempts {:?}), {} trace events, \
         victim flight holds {} of {} items — artifacts in {}",
        telemetry.lanes.len(),
        victim_attempts,
        events.len(),
        post.entries.len(),
        post.seq,
        artifacts.display()
    );
}

fn worker_main(w: &WorkerEnv) {
    if std::env::var("RUSTFI_CHAOS_HANG").is_ok() {
        // Chaos: hang before touching the journal; the orchestrator's
        // heartbeat deadline must catch and kill us.
        loop {
            std::thread::sleep(Duration::from_secs(1));
        }
    }
    let tb = Testbed::from_env();
    let mut cfg = tb.campaign_config();
    if let Some(ms) = std::env::var("RUSTFI_CHAOS_SLOW_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
    {
        // Chaos: throttle via a per-record progress sink so the
        // orchestrator's kill lands mid-run. Progress reporting is
        // record-invariant, so the throttled attempt's journal stays
        // bit-compatible with the fast retry's.
        cfg.progress = Some(ProgressRecorder::new(1, move |_| {
            std::thread::sleep(Duration::from_millis(ms));
        }));
    }
    let factory = tb.factory();
    let campaign = tb.campaign(&factory);
    let spec = plan_shards(cfg.trials, w.count)[w.index];
    run_shard_worker_observed(
        &campaign,
        &cfg,
        &spec,
        &w.journal,
        w.attempt as u32,
        Duration::from_millis(200),
    )
    .expect("shard run failed");
}
