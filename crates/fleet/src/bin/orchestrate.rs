//! Fleet orchestrator: runs a sharded campaign across worker processes
//! with crash-tolerant supervision, then prints the merged report.
//!
//! One binary, two modes. Launched plainly it is the **orchestrator**: it
//! plans shards, re-executes itself once per shard with the
//! `RUSTFI_SHARD_*` environment set, watches journals and heartbeats,
//! restarts dead or hung workers with exponential backoff (each restart
//! resumes from the shard journal), and finally merges the shard journals.
//! With `RUSTFI_SHARD_INDEX` set it is a **worker**: it rebuilds the same
//! deterministic campaign from the environment and runs just its shard's
//! trial range.
//!
//! Run with: `cargo run -p rustfi-fleet --bin orchestrate --release`
//!
//! Observability: `--trace <out.json>` turns on fleet telemetry — each
//! worker streams spans/events to a crash-safe sidecar next to its journal,
//! keeps a `.flight` postmortem ring, and the orchestrator merges every
//! sidecar (restarts included) into one clock-normalized Chrome trace at
//! `out.json` (open in Perfetto), prints the per-layer SDC/DUE table with
//! 95% Wilson intervals and latency quantiles, and with `--prom <out.prom>`
//! also writes the aggregated Prometheus dump.
//!
//! Knobs (on top of the testbed's `RUSTFI_MODEL`/`RUSTFI_TRIALS`/
//! `RUSTFI_SEED`/`RUSTFI_IMAGES`/`RUSTFI_FUSION`/`RUSTFI_THREADS`):
//! `RUSTFI_SHARDS` (default 4), `RUSTFI_FLEET_DIR` (default
//! `fleet-journals`), `RUSTFI_MAX_RESTARTS` (default 3),
//! `RUSTFI_HEARTBEAT_TIMEOUT_MS` (default 30000), `RUSTFI_POLL_MS`
//! (default 50), `RUSTFI_FLEET_DEADLINE_MS` (optional wall-clock budget).

use rustfi::shard::plan_shards;
use rustfi::ProgressRecorder;
use rustfi_fleet::testbed::{env_usize, Testbed};
use rustfi_fleet::{
    orchestrate, run_shard_worker, run_shard_worker_observed, worker_env, FleetConfig, FleetReport,
    ENV_SHARD_ATTEMPT, ENV_SHARD_COUNT, ENV_SHARD_INDEX, ENV_SHARD_JOURNAL, ENV_SHARD_TELEMETRY,
};
use rustfi_obs::CampaignStats;
use std::path::PathBuf;
use std::process::Command;
use std::time::Duration;

fn main() {
    if let Some(w) = worker_env() {
        worker_main(&w);
        return;
    }

    let (trace_out, prom_out) = parse_args();
    let telemetry_on = trace_out.is_some() || prom_out.is_some();

    let tb = Testbed::from_env();
    let cam_cfg = tb.campaign_config();
    let shards = env_usize("RUSTFI_SHARDS", 4);
    let dir = PathBuf::from(
        std::env::var("RUSTFI_FLEET_DIR").unwrap_or_else(|_| String::from("fleet-journals")),
    );
    let mut fleet = FleetConfig::new(cam_cfg.trials, shards, dir);
    fleet.max_restarts = env_usize("RUSTFI_MAX_RESTARTS", 3);
    fleet.heartbeat_timeout =
        Duration::from_millis(env_usize("RUSTFI_HEARTBEAT_TIMEOUT_MS", 30_000) as u64);
    fleet.poll_interval = Duration::from_millis(env_usize("RUSTFI_POLL_MS", 50) as u64);
    if let Ok(ms) = std::env::var("RUSTFI_FLEET_DEADLINE_MS") {
        fleet.deadline = ms.parse().ok().map(Duration::from_millis);
    }
    fleet.progress = Some(ProgressRecorder::stderr(cam_cfg.trials.div_ceil(20).max(1)));

    let exe = std::env::current_exe().expect("own executable path");
    eprintln!(
        "orchestrate — {} trials over {} shards (journals in {}{})",
        cam_cfg.trials,
        shards,
        fleet.dir.display(),
        if telemetry_on { ", telemetry on" } else { "" }
    );
    let report = orchestrate(&fleet, |spec, path, attempt| {
        let mut cmd = Command::new(&exe);
        cmd.env(ENV_SHARD_INDEX, spec.index.to_string())
            .env(ENV_SHARD_COUNT, spec.count.to_string())
            .env(ENV_SHARD_JOURNAL, path)
            .env(ENV_SHARD_ATTEMPT, attempt.to_string());
        if telemetry_on {
            cmd.env(ENV_SHARD_TELEMETRY, "1");
        }
        cmd.spawn()
    })
    .expect("fleet failed");

    println!(
        "fleet finished in {:.2}s: {} spawns, {} restarts, {} hung kills",
        report.elapsed.as_secs_f64(),
        report.spawns,
        report.restarts,
        report.hung_kills
    );
    render_telemetry(&report, trace_out.as_deref(), prom_out.as_deref());
    match &report.merged {
        Some(m) if report.is_complete() => {
            println!(
                "merged report: {} records | masked {} sdc {} due {} crash {} hang {}",
                m.records.len(),
                m.counts.masked,
                m.counts.sdc,
                m.counts.due,
                m.counts.crash,
                m.counts.hang
            );
        }
        Some(m) => {
            println!(
                "PARTIAL merged report: {} of {} trials, missing shards {:?}",
                m.records.len(),
                m.trials,
                m.missing_shards,
            );
            for d in &report.abandoned_detail {
                println!(
                    "  abandoned shard {}: {} restart(s), {}/{} records, \
                     last activity {:.1}s before the fleet ended",
                    d.shard,
                    d.restarts,
                    d.records,
                    d.trials,
                    d.last_activity_age.as_secs_f64()
                );
            }
            std::process::exit(2);
        }
        None => {
            println!(
                "no shard journal was ever written; abandoned {:?}",
                report.abandoned
            );
            std::process::exit(2);
        }
    }
}

/// Parses `--trace <path>` and `--prom <path>`; anything else is refused so
/// a typo can't silently run without the trace the user asked for.
fn parse_args() -> (Option<PathBuf>, Option<PathBuf>) {
    let mut trace = None;
    let mut prom = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let slot = match arg.as_str() {
            "--trace" => &mut trace,
            "--prom" => &mut prom,
            other => {
                eprintln!("unknown argument {other:?}; usage: orchestrate [--trace out.json] [--prom out.prom]");
                std::process::exit(64);
            }
        };
        match args.next() {
            Some(path) => *slot = Some(PathBuf::from(path)),
            None => {
                eprintln!("{arg} needs a path argument");
                std::process::exit(64);
            }
        }
    }
    (trace, prom)
}

/// Writes the merged Chrome trace / Prometheus dump and prints the
/// statistical campaign report from whatever telemetry the fleet harvested.
fn render_telemetry(
    report: &FleetReport,
    trace_out: Option<&std::path::Path>,
    prom_out: Option<&std::path::Path>,
) {
    let Some(telemetry) = &report.telemetry else {
        if trace_out.is_some() || prom_out.is_some() {
            eprintln!("no telemetry sidecars found; nothing to export");
        }
        return;
    };
    if let Some(path) = trace_out {
        match telemetry.write_chrome_trace(path) {
            Ok(()) => println!(
                "merged trace: {} ({} lanes, load in https://ui.perfetto.dev)",
                path.display(),
                telemetry.lanes.len()
            ),
            Err(e) => eprintln!("writing trace {}: {e}", path.display()),
        }
    }
    if let Some(path) = prom_out {
        match std::fs::write(path, telemetry.prometheus()) {
            Ok(()) => println!("prometheus dump: {}", path.display()),
            Err(e) => eprintln!("writing prometheus dump {}: {e}", path.display()),
        }
    }
    for (shard, path) in &report.flights {
        println!("flight postmortem (shard {shard}): {}", path.display());
    }
    let mut stats = CampaignStats::default();
    for lane in &telemetry.lanes {
        stats.ingest_batch(&lane.batch);
    }
    print!("{}", stats.sdc_table());
    print!("{}", stats.latency_summary());
}

fn worker_main(w: &rustfi_fleet::WorkerEnv) {
    let tb = Testbed::from_env();
    let cfg = tb.campaign_config();
    let factory = tb.factory();
    let campaign = tb.campaign(&factory);
    let spec = plan_shards(cfg.trials, w.count)[w.index];
    let every = Duration::from_secs(1);
    let result = if w.telemetry {
        run_shard_worker_observed(&campaign, &cfg, &spec, &w.journal, w.attempt as u32, every)
    } else {
        run_shard_worker(&campaign, &cfg, &spec, &w.journal, every)
    }
    .expect("shard run failed");
    eprintln!(
        "shard {}/{} (attempt {}) done: {} records this range",
        w.index,
        w.count,
        w.attempt,
        result.records.len()
    );
}
