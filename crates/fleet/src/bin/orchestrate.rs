//! Fleet orchestrator: runs a sharded campaign across worker processes
//! with crash-tolerant supervision, then prints the merged report.
//!
//! One binary, two modes. Launched plainly it is the **orchestrator**: it
//! plans shards, re-executes itself once per shard with the
//! `RUSTFI_SHARD_*` environment set, watches journals and heartbeats,
//! restarts dead or hung workers with exponential backoff (each restart
//! resumes from the shard journal), and finally merges the shard journals.
//! With `RUSTFI_SHARD_INDEX` set it is a **worker**: it rebuilds the same
//! deterministic campaign from the environment and runs just its shard's
//! trial range.
//!
//! Run with: `cargo run -p rustfi-fleet --bin orchestrate --release`
//!
//! Knobs (on top of the testbed's `RUSTFI_MODEL`/`RUSTFI_TRIALS`/
//! `RUSTFI_SEED`/`RUSTFI_IMAGES`/`RUSTFI_FUSION`/`RUSTFI_THREADS`):
//! `RUSTFI_SHARDS` (default 4), `RUSTFI_FLEET_DIR` (default
//! `fleet-journals`), `RUSTFI_MAX_RESTARTS` (default 3),
//! `RUSTFI_HEARTBEAT_TIMEOUT_MS` (default 30000), `RUSTFI_POLL_MS`
//! (default 50), `RUSTFI_FLEET_DEADLINE_MS` (optional wall-clock budget).

use rustfi::shard::plan_shards;
use rustfi::ProgressRecorder;
use rustfi_fleet::testbed::{env_usize, Testbed};
use rustfi_fleet::{
    orchestrate, run_shard_worker, worker_env, FleetConfig, ENV_SHARD_ATTEMPT, ENV_SHARD_COUNT,
    ENV_SHARD_INDEX, ENV_SHARD_JOURNAL,
};
use std::path::PathBuf;
use std::process::Command;
use std::time::Duration;

fn main() {
    if let Some(w) = worker_env() {
        worker_main(&w);
        return;
    }

    let tb = Testbed::from_env();
    let cam_cfg = tb.campaign_config();
    let shards = env_usize("RUSTFI_SHARDS", 4);
    let dir = PathBuf::from(
        std::env::var("RUSTFI_FLEET_DIR").unwrap_or_else(|_| String::from("fleet-journals")),
    );
    let mut fleet = FleetConfig::new(cam_cfg.trials, shards, dir);
    fleet.max_restarts = env_usize("RUSTFI_MAX_RESTARTS", 3);
    fleet.heartbeat_timeout =
        Duration::from_millis(env_usize("RUSTFI_HEARTBEAT_TIMEOUT_MS", 30_000) as u64);
    fleet.poll_interval = Duration::from_millis(env_usize("RUSTFI_POLL_MS", 50) as u64);
    if let Ok(ms) = std::env::var("RUSTFI_FLEET_DEADLINE_MS") {
        fleet.deadline = ms.parse().ok().map(Duration::from_millis);
    }
    fleet.progress = Some(ProgressRecorder::stderr(cam_cfg.trials.div_ceil(20).max(1)));

    let exe = std::env::current_exe().expect("own executable path");
    eprintln!(
        "orchestrate — {} trials over {} shards (journals in {})",
        cam_cfg.trials,
        shards,
        fleet.dir.display()
    );
    let report = orchestrate(&fleet, |spec, path, attempt| {
        Command::new(&exe)
            .env(ENV_SHARD_INDEX, spec.index.to_string())
            .env(ENV_SHARD_COUNT, spec.count.to_string())
            .env(ENV_SHARD_JOURNAL, path)
            .env(ENV_SHARD_ATTEMPT, attempt.to_string())
            .spawn()
    })
    .expect("fleet failed");

    println!(
        "fleet finished in {:.2}s: {} spawns, {} restarts, {} hung kills",
        report.elapsed.as_secs_f64(),
        report.spawns,
        report.restarts,
        report.hung_kills
    );
    match &report.merged {
        Some(m) if report.is_complete() => {
            println!(
                "merged report: {} records | masked {} sdc {} due {} crash {} hang {}",
                m.records.len(),
                m.counts.masked,
                m.counts.sdc,
                m.counts.due,
                m.counts.crash,
                m.counts.hang
            );
        }
        Some(m) => {
            println!(
                "PARTIAL merged report: {} of {} trials, missing shards {:?}, abandoned {:?}",
                m.records.len(),
                m.trials,
                m.missing_shards,
                report.abandoned
            );
            std::process::exit(2);
        }
        None => {
            println!(
                "no shard journal was ever written; abandoned {:?}",
                report.abandoned
            );
            std::process::exit(2);
        }
    }
}

fn worker_main(w: &rustfi_fleet::WorkerEnv) {
    let tb = Testbed::from_env();
    let cfg = tb.campaign_config();
    let factory = tb.factory();
    let campaign = tb.campaign(&factory);
    let spec = plan_shards(cfg.trials, w.count)[w.index];
    let result = run_shard_worker(&campaign, &cfg, &spec, &w.journal, Duration::from_secs(1))
        .expect("shard run failed");
    eprintln!(
        "shard {}/{} (attempt {}) done: {} records this range",
        w.index,
        w.count,
        w.attempt,
        result.records.len()
    );
}
