//! Crash-tolerant multi-process campaign orchestration.
//!
//! `rustfi-fleet` scales a campaign across worker *processes* the same way
//! `rustfi` scales it across threads — without changing a single record.
//! The shard planner ([`rustfi::shard::plan_shards`]) deterministically
//! splits the trial space into contiguous ranges; each worker runs its
//! range through [`rustfi::Campaign::run_shard`] with its own crash-safe
//! journal; and [`orchestrate`] supervises the fleet:
//!
//! - **dead shard** (non-zero exit, SIGKILL, OOM): restarted with
//!   exponential backoff; the restarted worker resumes from its journal via
//!   the torn-tail-repairing resume, so completed trials never rerun;
//! - **hung shard** (no journal growth — records *or* heartbeats — within
//!   the heartbeat deadline): killed, then treated as dead. Workers keep a
//!   [`Heartbeat`] thread appending liveness lines so a slow-but-alive
//!   shard is never mistaken for a hung one; a live process stuck inside a
//!   single forward pass is the campaign watchdog's job
//!   (`CampaignConfig::max_steps`), not the fleet's;
//! - **retry budget exhausted**: the shard is abandoned and the final
//!   report degrades gracefully — [`rustfi::shard::merge_shard_journals`]
//!   still merges every journal that exists and lists the gap in
//!   `missing_shards` instead of failing.
//!
//! Because trial randomness is position-based (`(seed, trial)`), the merged
//! report is record-identical to a single-process run for any shard count
//! and any interleaving of crashes and restarts; `tests/properties.rs`
//! enforces the invariance and the `chaos_gate` binary enforces the
//! crash-recovery path in CI.
//!
//! The orchestrator is a dependency-free poll loop over
//! [`std::process::Child`] handles — no async runtime — which keeps the
//! fleet layer as auditable as the journal format it builds on.

use rustfi::campaign::{ProgressRecorder, ProgressUpdate};
use rustfi::shard::{merge_shard_journals, plan_shards, MergedCampaign, ShardSpec};
use rustfi::{
    append_heartbeat, read_journal, Campaign, CampaignConfig, CampaignResult, FiError,
    OutcomeCounts,
};
use rustfi_obs::{
    flight_path, names as obs_names, FanoutRecorder, FlightRecorder, MergedTelemetry, Recorder,
    SidecarRecorder, DEFAULT_FLIGHT_CAP,
};
use std::path::{Path, PathBuf};
use std::process::Child;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

pub mod testbed;

/// Environment variable carrying a worker's shard index; its presence is
/// what switches a fleet binary into worker mode.
pub const ENV_SHARD_INDEX: &str = "RUSTFI_SHARD_INDEX";
/// Environment variable carrying the fleet's shard count.
pub const ENV_SHARD_COUNT: &str = "RUSTFI_SHARD_COUNT";
/// Environment variable carrying the worker's journal path.
pub const ENV_SHARD_JOURNAL: &str = "RUSTFI_SHARD_JOURNAL";
/// Environment variable carrying the launch attempt (0 = first launch),
/// so chaos harnesses can misbehave on one attempt only.
pub const ENV_SHARD_ATTEMPT: &str = "RUSTFI_SHARD_ATTEMPT";
/// Environment variable switching workers into observed mode (`"1"`):
/// each worker streams its telemetry to a per-attempt sidecar and keeps a
/// flight-recorder postmortem next to its journal
/// (see [`run_shard_worker_observed`]).
pub const ENV_SHARD_TELEMETRY: &str = "RUSTFI_SHARD_TELEMETRY";

/// A worker process's shard assignment, decoded from the environment.
#[derive(Debug, Clone)]
pub struct WorkerEnv {
    /// Which shard this worker runs.
    pub index: usize,
    /// Total shard count of the fleet.
    pub count: usize,
    /// The shard's journal path.
    pub journal: PathBuf,
    /// Launch attempt, 0 for the first launch.
    pub attempt: usize,
    /// Whether the orchestrator asked for telemetry ([`ENV_SHARD_TELEMETRY`]).
    pub telemetry: bool,
}

/// Decodes the worker-mode environment ([`ENV_SHARD_INDEX`] and friends).
/// Returns `None` when [`ENV_SHARD_INDEX`] is unset — i.e. the process is
/// the orchestrator, not a worker.
///
/// # Panics
///
/// Panics when the variables are present but unparsable: that is a bug in
/// the launcher, not a recoverable state.
pub fn worker_env() -> Option<WorkerEnv> {
    let index = std::env::var(ENV_SHARD_INDEX).ok()?;
    let get =
        |k: &str| std::env::var(k).unwrap_or_else(|_| panic!("worker environment is missing {k}"));
    let parse = |k: &str, v: &str| -> usize {
        v.parse()
            .unwrap_or_else(|_| panic!("worker environment has unparsable {k}={v:?}"))
    };
    Some(WorkerEnv {
        index: parse(ENV_SHARD_INDEX, &index),
        count: parse(ENV_SHARD_COUNT, &get(ENV_SHARD_COUNT)),
        journal: PathBuf::from(get(ENV_SHARD_JOURNAL)),
        attempt: parse(ENV_SHARD_ATTEMPT, &get(ENV_SHARD_ATTEMPT)),
        telemetry: std::env::var(ENV_SHARD_TELEMETRY).is_ok_and(|v| v == "1"),
    })
}

/// A background thread appending `{"heartbeat":...}` lines to a shard
/// journal so the orchestrator can tell a slow worker from a dead one.
/// Stops (and joins) on drop.
pub struct Heartbeat {
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl Heartbeat {
    /// Starts beating `every` interval. Beats are best-effort: before the
    /// campaign creates the journal, [`append_heartbeat`] declines without
    /// error (it must never create the file — an empty journal would look
    /// resumable), and I/O failures are swallowed; liveness reporting must
    /// never take a worker down.
    pub fn start(path: PathBuf, every: Duration) -> Self {
        Self::start_with_tick(path, every, || {})
    }

    /// Like [`Heartbeat::start`], but also runs `tick` once per beat from
    /// the heartbeat thread. The observed worker path uses this to snapshot
    /// its flight-recorder ring to disk periodically: a SIGKILL gives no
    /// chance to flush, so the on-disk postmortem trails reality by at most
    /// one heartbeat interval.
    pub fn start_with_tick(
        path: PathBuf,
        every: Duration,
        tick: impl Fn() + Send + 'static,
    ) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let seen = Arc::clone(&stop);
        let thread = std::thread::spawn(move || {
            while !seen.load(Ordering::Relaxed) {
                let _ = append_heartbeat(&path);
                tick();
                // Sleep in short steps so drop() never waits a full interval.
                let mut slept = Duration::ZERO;
                while slept < every && !seen.load(Ordering::Relaxed) {
                    let step = Duration::from_millis(20).min(every - slept);
                    std::thread::sleep(step);
                    slept += step;
                }
            }
        });
        Self {
            stop,
            thread: Some(thread),
        }
    }
}

impl Drop for Heartbeat {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// Removes a journal that a kill left without even one complete line. Such
/// a file holds no durable state (the header never finished writing), but
/// it would make every subsequent resume fail — so a restarted worker
/// discards it and starts the shard fresh.
pub fn discard_stillborn_journal(path: &Path) -> std::io::Result<()> {
    match std::fs::read(path) {
        Ok(bytes) if !bytes.contains(&b'\n') => std::fs::remove_file(path),
        Ok(_) => Ok(()),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
        Err(e) => Err(e),
    }
}

/// Runs one shard as a fleet worker: clears a stillborn journal if the
/// previous attempt died before the header landed, keeps a [`Heartbeat`]
/// alive for the duration, and runs (or resumes) the shard's trial range.
pub fn run_shard_worker(
    campaign: &Campaign<'_>,
    cfg: &CampaignConfig,
    spec: &ShardSpec,
    journal: &Path,
    heartbeat_every: Duration,
) -> Result<CampaignResult, FiError> {
    discard_stillborn_journal(journal)
        .map_err(|e| FiError::io(format!("inspecting journal {}", journal.display()), e))?;
    let _beat = Heartbeat::start(journal.to_path_buf(), heartbeat_every);
    campaign.run_shard(cfg, spec, journal)
}

/// [`run_shard_worker`] plus the fleet-telemetry tentpole: the worker's
/// observability stream goes to a per-attempt crash-safe sidecar
/// (`<journal>.attempt-NNNN.telemetry.jsonl`), and a bounded flight-recorder
/// ring keeps the last [`DEFAULT_FLIGHT_CAP`] spans/events for the
/// `<journal stem>.flight` postmortem. Three flush paths arm the postmortem:
/// an initial snapshot before the campaign starts (an instantly-killed
/// worker still leaves one), a periodic snapshot from the heartbeat thread
/// (a SIGKILL loses at most one heartbeat interval of history), and a
/// panic-hook snapshot.
///
/// Any recorder already in `cfg.recorder` keeps receiving everything via a
/// [`FanoutRecorder`]. Recording is proven record-invariant by the workspace
/// property tests, so an observed worker's journal stays bit-identical to an
/// unobserved one's. Telemetry failures (sidecar unwritable, snapshot I/O
/// errors) degrade to running unobserved — they never fail the shard.
pub fn run_shard_worker_observed(
    campaign: &Campaign<'_>,
    cfg: &CampaignConfig,
    spec: &ShardSpec,
    journal: &Path,
    attempt: u32,
    heartbeat_every: Duration,
) -> Result<CampaignResult, FiError> {
    discard_stillborn_journal(journal)
        .map_err(|e| FiError::io(format!("inspecting journal {}", journal.display()), e))?;
    let mut cfg = cfg.clone();
    let mut inner: Vec<Arc<dyn Recorder>> = Vec::new();
    let mut flight_for_beat: Option<Arc<FlightRecorder>> = None;
    match SidecarRecorder::create_for_journal(journal, spec.index, spec.count, attempt) {
        Ok(sidecar) => {
            let identity = sidecar.header();
            inner.push(Arc::new(sidecar));
            let flight = Arc::new(
                FlightRecorder::new(DEFAULT_FLIGHT_CAP)
                    .with_path(&flight_path(journal), Some(identity)),
            );
            FlightRecorder::arm_panic_flush(&flight);
            flight.snapshot_to_disk();
            flight_for_beat = Some(Arc::clone(&flight));
            inner.push(flight);
        }
        Err(_) => {
            // Telemetry must never take the worker down; run unobserved.
        }
    }
    if let Some(existing) = cfg.recorder.take() {
        inner.push(existing);
    }
    cfg.recorder = match inner.len() {
        0 => None,
        1 => inner.pop(),
        _ => Some(Arc::new(FanoutRecorder::new(inner))),
    };
    let _beat = match flight_for_beat {
        Some(flight) => {
            Heartbeat::start_with_tick(journal.to_path_buf(), heartbeat_every, move || {
                flight.snapshot_to_disk()
            })
        }
        None => Heartbeat::start(journal.to_path_buf(), heartbeat_every),
    };
    campaign.run_shard(&cfg, spec, journal)
}

/// Test-only fault injection for the fleet itself (a fault-injection tool's
/// orchestrator deserves fault injection too): SIGKILL `shard`'s worker the
/// first time its journal holds at least `after_records` records. Fires on
/// the shard's first launch only, so the restarted worker can finish — the
/// CI chaos gate uses this to prove kill-and-resume end to end.
#[derive(Debug, Clone, Copy)]
pub struct ChaosKill {
    /// Which shard to kill.
    pub shard: usize,
    /// How many journaled records to let it write first.
    pub after_records: usize,
}

/// Fleet-level knobs for [`orchestrate`].
#[derive(Clone)]
pub struct FleetConfig {
    /// The campaign's total trial count (shared by every shard).
    pub trials: usize,
    /// How many shard worker processes to run.
    pub shards: usize,
    /// Directory holding the shard journals
    /// ([`ShardSpec::journal_path`] naming).
    pub dir: PathBuf,
    /// How often the orchestrator polls children and journals.
    pub poll_interval: Duration,
    /// A shard whose journal shows no growth (records or heartbeats) for
    /// this long is declared hung, killed, and restarted.
    pub heartbeat_timeout: Duration,
    /// Restarts allowed per shard beyond its first launch; a shard that
    /// dies more often is abandoned (and reported in `missing_shards`).
    pub max_restarts: usize,
    /// First restart delay; doubles per consecutive failure.
    pub backoff_base: Duration,
    /// Upper bound on the exponential backoff.
    pub backoff_cap: Duration,
    /// Optional whole-fleet wall-clock budget: when exceeded, running
    /// shards are killed and reported as abandoned rather than waited on.
    pub deadline: Option<Duration>,
    /// Aggregate progress across all shard journals, emitted through the
    /// same [`ProgressRecorder`] campaigns use.
    pub progress: Option<ProgressRecorder>,
    /// Observability sink for the `fleet.*` counters.
    pub recorder: Option<Arc<dyn Recorder>>,
    /// Deterministic chaos injection; see [`ChaosKill`].
    pub chaos_kill: Option<ChaosKill>,
}

impl FleetConfig {
    /// A fleet over `trials` trials in `shards` shards, journaling into
    /// `dir`, with defaults tuned for interactive runs (50 ms polls, 30 s
    /// heartbeat deadline, 3 restarts with 250 ms → 5 s backoff).
    pub fn new(trials: usize, shards: usize, dir: PathBuf) -> Self {
        Self {
            trials,
            shards,
            dir,
            poll_interval: Duration::from_millis(50),
            heartbeat_timeout: Duration::from_secs(30),
            max_restarts: 3,
            backoff_base: Duration::from_millis(250),
            backoff_cap: Duration::from_secs(5),
            deadline: None,
            progress: None,
            recorder: None,
            chaos_kill: None,
        }
    }
}

/// Everything worth knowing about one abandoned shard, so a partial
/// report can say *why* the gap exists instead of just numbering it.
#[derive(Debug, Clone)]
pub struct AbandonedShard {
    /// The shard's index.
    pub shard: usize,
    /// Restarts performed before giving up (launches minus one).
    pub restarts: usize,
    /// How long before the fleet ended the shard's journal last grew
    /// (records or heartbeats) — large values mean it died early and
    /// stayed dead, small ones mean it was still thrashing at the end.
    pub last_activity_age: Duration,
    /// Trial records its journal holds.
    pub records: usize,
    /// Trials its shard plan assigned.
    pub trials: usize,
}

/// What a fleet run produced.
#[derive(Debug)]
pub struct FleetReport {
    /// The merged campaign, `None` only if no shard ever wrote a journal.
    pub merged: Option<MergedCampaign>,
    /// Worker processes launched (first launches and restarts).
    pub spawns: u64,
    /// Restarts performed after worker deaths.
    pub restarts: u64,
    /// Workers killed for missing the heartbeat deadline.
    pub hung_kills: u64,
    /// Shards abandoned after exhausting their restart budget (or cut off
    /// by the fleet deadline).
    pub abandoned: Vec<usize>,
    /// Per-shard postmortem detail for every entry in `abandoned`.
    pub abandoned_detail: Vec<AbandonedShard>,
    /// Flight-recorder postmortems harvested from the fleet dir after the
    /// run: `(shard index, path)`. Killed and hung workers leave one
    /// because the heartbeat thread snapshots the ring periodically.
    pub flights: Vec<(usize, PathBuf)>,
    /// Merged worker telemetry (sidecars found in the fleet dir), when any
    /// worker ran observed ([`run_shard_worker_observed`]). Carries the
    /// clock-normalized fleet timeline: render with
    /// [`MergedTelemetry::chrome_trace`] / `prometheus`.
    pub telemetry: Option<MergedTelemetry>,
    /// Fleet wall time.
    pub elapsed: Duration,
}

impl FleetReport {
    /// Whether every trial of the campaign is accounted for.
    pub fn is_complete(&self) -> bool {
        self.abandoned.is_empty()
            && self
                .merged
                .as_ref()
                .is_some_and(MergedCampaign::is_complete)
    }
}

/// Per-shard supervision state.
struct ShardState {
    spec: ShardSpec,
    path: PathBuf,
    child: Option<Child>,
    /// Deaths (and failed launches) so far; drives backoff and the budget.
    failures: usize,
    /// When to (re)launch; `None` while running, done, or abandoned.
    launch_at: Option<Instant>,
    last_len: u64,
    last_activity: Instant,
    records: usize,
    counts: OutcomeCounts,
    attempt: usize,
    chaos_fired: bool,
    done: bool,
    abandoned: bool,
}

impl ShardState {
    fn live(&self) -> bool {
        !self.done && !self.abandoned
    }

    /// Re-reads the shard journal if it grew; growth (records or
    /// heartbeats) is the liveness signal.
    fn observe(&mut self, now: Instant) {
        let Ok(meta) = std::fs::metadata(&self.path) else {
            return;
        };
        if meta.len() == self.last_len {
            return;
        }
        self.last_len = meta.len();
        self.last_activity = now;
        // Tolerant read: a worker may be mid-append (torn tail) — that's
        // fine — and a just-created file may not have its header yet, which
        // read_journal reports as an error we simply skip this poll.
        if let Ok((_, records)) = read_journal(&self.path) {
            let mut counts = OutcomeCounts::default();
            for r in &records {
                counts.record(&r.outcome);
            }
            self.records = records.len();
            self.counts = counts;
        }
    }

    /// Books one failure: schedules a backed-off relaunch while budget
    /// remains, abandons the shard once it runs out.
    fn book_failure(&mut self, cfg: &FleetConfig, now: Instant, restarts: &mut u64) {
        self.failures += 1;
        if self.failures > cfg.max_restarts {
            self.abandoned = true;
            self.launch_at = None;
            return;
        }
        let exp = (self.failures - 1).min(20) as u32;
        let backoff = cfg
            .backoff_base
            .saturating_mul(2u32.saturating_pow(exp))
            .min(cfg.backoff_cap);
        self.launch_at = Some(now + backoff);
        *restarts += 1;
    }

    fn kill_and_reap(&mut self) {
        if let Some(mut child) = self.child.take() {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

/// Runs a sharded campaign to completion (or graceful degradation) under
/// crash-tolerant supervision.
///
/// `launch` spawns one worker process for `(shard, journal path, attempt)`
/// — typically the current executable re-executed with the [`ENV_SHARD_INDEX`]
/// family set (see the `orchestrate` binary). The orchestrator polls
/// children and journals, restarts dead or hung workers with exponential
/// backoff (each restart resumes from the shard journal), abandons shards
/// that exhaust `max_restarts`, and finally merges whatever journals exist.
///
/// Pre-existing shard journals in `FleetConfig::dir` are resumed, so a
/// killed *orchestrator* can itself be rerun and will pick up where the
/// fleet left off.
pub fn orchestrate<F>(cfg: &FleetConfig, mut launch: F) -> Result<FleetReport, FiError>
where
    F: FnMut(&ShardSpec, &Path, usize) -> std::io::Result<Child>,
{
    assert!(cfg.shards > 0, "a fleet needs at least one shard");
    std::fs::create_dir_all(&cfg.dir)
        .map_err(|e| FiError::io(format!("creating fleet dir {}", cfg.dir.display()), e))?;
    let start = Instant::now();
    let mut shards: Vec<ShardState> = plan_shards(cfg.trials, cfg.shards)
        .into_iter()
        .map(|spec| {
            let path = spec.journal_path(&cfg.dir);
            let mut s = ShardState {
                spec,
                path,
                child: None,
                failures: 0,
                launch_at: Some(start),
                last_len: 0,
                last_activity: start,
                records: 0,
                counts: OutcomeCounts::default(),
                attempt: 0,
                chaos_fired: false,
                done: false,
                abandoned: false,
            };
            s.observe(start);
            // A shard whose journal already covers its whole range (a rerun
            // orchestrator over a finished fleet) needs no worker at all.
            if s.records >= s.spec.trials() && s.last_len > 0 {
                s.done = true;
                s.launch_at = None;
            }
            s
        })
        .collect();
    let resumed: usize = shards.iter().map(|s| s.records).sum();
    let (mut spawns, mut restarts, mut hung_kills) = (0u64, 0u64, 0u64);
    let mut last_reported = usize::MAX;

    loop {
        let now = Instant::now();
        if cfg.deadline.is_some_and(|d| now.duration_since(start) > d) {
            for s in shards.iter_mut().filter(|s| s.live()) {
                s.kill_and_reap();
                s.abandoned = true;
            }
            break;
        }
        for s in shards.iter_mut().filter(|s| s.live()) {
            s.observe(now);
            if let Some(child) = s.child.as_mut() {
                if let Some(chaos) = cfg.chaos_kill {
                    if chaos.shard == s.spec.index
                        && s.attempt == 1
                        && !s.chaos_fired
                        && s.records >= chaos.after_records
                    {
                        s.chaos_fired = true;
                        let _ = child.kill(); // SIGKILL on unix
                    }
                }
                match child.try_wait() {
                    Ok(Some(status)) => {
                        s.child = None;
                        if status.success() {
                            s.done = true;
                        } else {
                            s.book_failure(cfg, now, &mut restarts);
                        }
                    }
                    Ok(None) => {
                        if now.duration_since(s.last_activity) > cfg.heartbeat_timeout {
                            s.kill_and_reap();
                            hung_kills += 1;
                            s.book_failure(cfg, now, &mut restarts);
                        }
                    }
                    Err(_) => {
                        s.kill_and_reap();
                        s.book_failure(cfg, now, &mut restarts);
                    }
                }
            } else if s.launch_at.is_some_and(|t| now >= t) {
                s.launch_at = None;
                match launch(&s.spec, &s.path, s.attempt) {
                    Ok(child) => {
                        s.child = Some(child);
                        s.attempt += 1;
                        s.last_activity = Instant::now();
                        spawns += 1;
                    }
                    Err(_) => s.book_failure(cfg, now, &mut restarts),
                }
            }
        }

        let done: usize = shards.iter().map(|s| s.records).sum();
        if let Some(pr) = &cfg.progress {
            if done != last_reported {
                last_reported = done;
                let mut counts = OutcomeCounts::default();
                for s in &shards {
                    counts.masked += s.counts.masked;
                    counts.sdc += s.counts.sdc;
                    counts.due += s.counts.due;
                    counts.crash += s.counts.crash;
                    counts.hang += s.counts.hang;
                }
                pr.emit(&ProgressUpdate {
                    done,
                    total: cfg.trials,
                    resumed,
                    elapsed: start.elapsed(),
                    counts,
                });
            }
        }
        if shards.iter().all(|s| !s.live()) {
            break;
        }
        std::thread::sleep(cfg.poll_interval);
    }

    // One final observation pass so the report reflects each journal's
    // state at exit, then merge whatever exists.
    let now = Instant::now();
    for s in shards.iter_mut() {
        s.observe(now);
    }
    let abandoned: Vec<usize> = shards
        .iter()
        .filter(|s| s.abandoned)
        .map(|s| s.spec.index)
        .collect();
    let abandoned_detail: Vec<AbandonedShard> = shards
        .iter()
        .filter(|s| s.abandoned)
        .map(|s| AbandonedShard {
            shard: s.spec.index,
            restarts: s.attempt.saturating_sub(1),
            last_activity_age: now.duration_since(s.last_activity),
            records: s.records,
            trials: s.spec.trials(),
        })
        .collect();
    // Harvest whatever telemetry the workers left behind: flight
    // postmortems next to each journal (killed/hung workers leave one via
    // the heartbeat thread's periodic snapshots) and the telemetry
    // sidecars, merged onto one clock-normalized fleet timeline.
    let flights: Vec<(usize, PathBuf)> = shards
        .iter()
        .filter_map(|s| {
            let p = flight_path(&s.path);
            p.exists().then_some((s.spec.index, p))
        })
        .collect();
    let telemetry = match MergedTelemetry::from_dir(&cfg.dir) {
        Ok(t) if !t.lanes.is_empty() => Some(t),
        _ => None,
    };
    if let Some(r) = &cfg.recorder {
        r.counter_add(obs_names::FLEET_SPAWNS, spawns);
        r.counter_add(obs_names::FLEET_RESTARTS, restarts);
        r.counter_add(obs_names::FLEET_HUNG_KILLS, hung_kills);
        r.counter_add(obs_names::FLEET_ABANDONED, abandoned.len() as u64);
    }
    let paths: Vec<PathBuf> = shards.iter().map(|s| s.path.clone()).collect();
    let merged = if paths.iter().any(|p| p.exists()) {
        Some(merge_shard_journals(&paths)?)
    } else {
        None
    };
    Ok(FleetReport {
        merged,
        spawns,
        restarts,
        hung_kills,
        abandoned,
        abandoned_detail,
        flights,
        telemetry,
        elapsed: start.elapsed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rustfi::{JournalHeader, JournalWriter, NeuronSite, OutcomeKind, TrialRecord};
    use std::process::Command;

    fn record(trial: usize) -> TrialRecord {
        TrialRecord {
            trial,
            image_index: trial % 2,
            layer: 0,
            site: Some(NeuronSite {
                layer: 0,
                batch: None,
                channel: 0,
                y: 0,
                x: trial,
            }),
            outcome: OutcomeKind::Masked,
            due_layer: None,
            top5_miss: false,
            confidence_delta: 0.0,
        }
    }

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("rustfi-fleet-tests").join(name);
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// Writes a complete journal for `spec` to a staging path the fake
    /// workers `cp` into place.
    fn stage_shard(dir: &Path, spec: &ShardSpec, trials: usize) -> PathBuf {
        let staged = dir.join(format!("staged-{}.jsonl", spec.index));
        let mut w = JournalWriter::create(
            &staged,
            JournalHeader {
                seed: 5,
                trials,
                config_hash: 0xC0FFEE,
                shard_index: spec.index,
                shard_count: spec.count,
            },
        )
        .unwrap();
        for t in spec.start..spec.end {
            w.append(&record(t), &staged).unwrap();
        }
        staged
    }

    fn fast_cfg(trials: usize, shards: usize, dir: PathBuf) -> FleetConfig {
        let mut cfg = FleetConfig::new(trials, shards, dir);
        cfg.poll_interval = Duration::from_millis(10);
        cfg.heartbeat_timeout = Duration::from_millis(400);
        cfg.backoff_base = Duration::from_millis(10);
        cfg.backoff_cap = Duration::from_millis(50);
        cfg.deadline = Some(Duration::from_secs(30));
        cfg
    }

    #[test]
    fn healthy_fleet_merges_to_a_complete_report() {
        let trials = 9;
        let dir = tmp_dir("healthy");
        let staged: Vec<PathBuf> = plan_shards(trials, 3)
            .iter()
            .map(|s| stage_shard(&dir, s, trials))
            .collect();
        let report = orchestrate(&fast_cfg(trials, 3, dir), |spec, path, _attempt| {
            Command::new("cp")
                .arg(&staged[spec.index])
                .arg(path)
                .spawn()
        })
        .unwrap();
        assert!(report.is_complete(), "{report:?}");
        assert_eq!(report.spawns, 3);
        assert_eq!(report.restarts, 0);
        let merged = report.merged.unwrap();
        assert_eq!(merged.records.len(), trials);
        assert_eq!(merged.counts.masked, trials);
    }

    #[test]
    fn dead_worker_is_restarted_with_backoff_and_the_fleet_recovers() {
        let trials = 6;
        let dir = tmp_dir("dead");
        let staged: Vec<PathBuf> = plan_shards(trials, 2)
            .iter()
            .map(|s| stage_shard(&dir, s, trials))
            .collect();
        let report = orchestrate(&fast_cfg(trials, 2, dir), |spec, path, attempt| {
            if spec.index == 1 && attempt == 0 {
                // First launch of shard 1 dies immediately.
                Command::new("false").spawn()
            } else {
                Command::new("cp")
                    .arg(&staged[spec.index])
                    .arg(path)
                    .spawn()
            }
        })
        .unwrap();
        assert!(report.is_complete(), "{report:?}");
        assert!(report.restarts >= 1);
        assert_eq!(report.spawns, 3, "2 first launches + 1 restart");
    }

    #[test]
    fn hung_worker_is_killed_and_restarted() {
        let trials = 4;
        let dir = tmp_dir("hung");
        let staged: Vec<PathBuf> = plan_shards(trials, 2)
            .iter()
            .map(|s| stage_shard(&dir, s, trials))
            .collect();
        let report = orchestrate(&fast_cfg(trials, 2, dir), |spec, path, attempt| {
            if spec.index == 0 && attempt == 0 {
                // Never writes a byte: the heartbeat deadline must catch it.
                Command::new("sleep").arg("600").spawn()
            } else {
                Command::new("cp")
                    .arg(&staged[spec.index])
                    .arg(path)
                    .spawn()
            }
        })
        .unwrap();
        assert!(report.is_complete(), "{report:?}");
        assert!(report.hung_kills >= 1, "{report:?}");
    }

    #[test]
    fn exhausted_retry_budget_degrades_to_a_partial_report() {
        let trials = 8;
        let dir = tmp_dir("abandon");
        let plan = plan_shards(trials, 2);
        let staged = stage_shard(&dir, &plan[0], trials);
        let mut cfg = fast_cfg(trials, 2, dir);
        cfg.max_restarts = 1;
        let report = orchestrate(&cfg, |spec, path, _attempt| {
            if spec.index == 1 {
                Command::new("false").spawn() // dies every time
            } else {
                Command::new("cp").arg(&staged).arg(path).spawn()
            }
        })
        .unwrap();
        assert!(!report.is_complete());
        assert_eq!(report.abandoned, vec![1]);
        assert_eq!(report.abandoned_detail.len(), 1);
        let detail = &report.abandoned_detail[0];
        assert_eq!(detail.shard, 1);
        assert_eq!(detail.restarts, 1, "one restart before the budget ran out");
        assert_eq!(detail.records, 0, "`false` never journals anything");
        assert_eq!(detail.trials, plan[1].trials());
        let merged = report.merged.unwrap();
        assert_eq!(merged.missing_shards, vec![1]);
        assert_eq!(merged.records.len(), plan[0].trials());
        assert_eq!(merged.missing_trials, plan[1].trials());
    }

    #[test]
    fn rerunning_the_orchestrator_over_a_finished_fleet_spawns_nothing() {
        let trials = 6;
        let dir = tmp_dir("rerun");
        let staged: Vec<PathBuf> = plan_shards(trials, 2)
            .iter()
            .map(|s| stage_shard(&dir, s, trials))
            .collect();
        let cfg = fast_cfg(trials, 2, dir.clone());
        // First fleet completes normally; its journals are in place.
        for (spec, staged) in plan_shards(trials, 2).iter().zip(&staged) {
            std::fs::copy(staged, spec.journal_path(&dir)).unwrap();
        }
        let report = orchestrate(&cfg, |_spec, _path, _attempt| {
            panic!("finished shards must not be relaunched")
        })
        .unwrap();
        assert!(report.is_complete(), "{report:?}");
        assert_eq!(report.spawns, 0);
    }

    #[test]
    fn stillborn_journal_is_discarded_but_real_ones_are_kept() {
        let dir = tmp_dir("stillborn");
        let torn = dir.join("torn.jsonl");
        std::fs::write(&torn, "{\"rustfi_jour").unwrap();
        discard_stillborn_journal(&torn).unwrap();
        assert!(!torn.exists(), "headerless journal removed");

        let real = dir.join("real.jsonl");
        std::fs::write(&real, "{\"rustfi_journal\":2}\npartial-tail").unwrap();
        discard_stillborn_journal(&real).unwrap();
        assert!(real.exists(), "journal with a complete line survives");

        discard_stillborn_journal(&dir.join("absent.jsonl")).unwrap();
    }

    #[test]
    fn observed_worker_leaves_sidecar_and_flight_and_identical_records() {
        use rustfi_obs::{read_flight, read_sidecar, sidecar_path};

        let dir = tmp_dir("observed");
        let tb = testbed::Testbed::from_env();
        let mut cfg = tb.campaign_config();
        cfg.trials = 12;
        let factory = tb.factory();
        let campaign = tb.campaign(&factory);
        let spec = plan_shards(cfg.trials, 1)[0];

        // Unobserved reference first, then the observed worker in a second
        // directory: telemetry must not perturb a single record.
        let plain = run_shard_worker(
            &campaign,
            &cfg,
            &spec,
            &dir.join("plain.jsonl"),
            Duration::from_millis(50),
        )
        .unwrap();
        let journal = dir.join("shard-0000-of-0001.jsonl");
        let observed = run_shard_worker_observed(
            &campaign,
            &cfg,
            &spec,
            &journal,
            2,
            Duration::from_millis(50),
        )
        .unwrap();
        assert_eq!(
            observed.records, plain.records,
            "telemetry perturbed records"
        );

        // The sidecar for attempt 2 exists, reads clean, and saw the run:
        // trial outcomes for every trial plus per-trial timings.
        let sc = read_sidecar(&sidecar_path(&journal, 2)).unwrap();
        assert_eq!(sc.torn_lines, 0);
        assert_eq!(
            (sc.header.shard, sc.header.shards, sc.header.attempt),
            (0, 1, 2)
        );
        let outcomes = sc
            .batch
            .events
            .iter()
            .filter(|e| matches!(e, rustfi_obs::Event::TrialOutcome(_)))
            .count();
        assert_eq!(outcomes, cfg.trials, "one outcome event per trial");

        // The flight postmortem exists (campaign-end flush at minimum) and
        // carries the shard identity.
        let fl = read_flight(&flight_path(&journal)).unwrap();
        assert_eq!(fl.shard, Some(0));
        assert_eq!(fl.attempt, Some(2));
        assert!(fl.seq > 0, "the ring saw the run");

        // An orchestrator over this directory harvests both.
        let report = orchestrate(&fast_cfg(cfg.trials, 1, dir), |_s, _p, _a| {
            panic!("finished shard must not relaunch")
        })
        .unwrap();
        assert_eq!(report.flights.len(), 1);
        let telemetry = report.telemetry.expect("sidecar was found and merged");
        assert_eq!(telemetry.lanes.len(), 1);
        assert!(telemetry.chrome_trace().contains("\"traceEvents\""));
    }

    #[test]
    fn heartbeat_thread_beats_into_existing_journals_only() {
        let dir = tmp_dir("beat");
        let path = dir.join("shard.jsonl");
        {
            let _beat = Heartbeat::start(path.clone(), Duration::from_millis(10));
            std::thread::sleep(Duration::from_millis(80));
            assert!(!path.exists(), "no journal yet: no beats");
            JournalWriter::create(&path, JournalHeader::solo(1, 1, 0)).unwrap();
            std::thread::sleep(Duration::from_millis(120));
        } // drop stops the thread
        let (_, records) = read_journal(&path).unwrap();
        assert!(records.is_empty(), "heartbeats are not records");
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(
            text.contains("heartbeat"),
            "beats landed once the file existed"
        );
    }
}
