//! Integration tests for the paper's five use cases (§IV), each exercised
//! through the public APIs end-to-end.

use rustfi::{models, BatchSelect, FaultInjector, FiConfig, NeuronFault, NeuronSelect};
use rustfi_data::{DetectionSpec, SynthSpec};
use rustfi_detect::{diff_detections, DetectorConfig, TrainDetectorConfig, YoloLite};
use rustfi_interpret::{gradcam, heatmap_divergence, rank_feature_maps};
use rustfi_nn::train::{accuracy, fit, predict, TrainConfig};
use rustfi_nn::{zoo, LayerKind, ZooConfig};
use rustfi_robust::ibp::{IbpNet, IbpSpec, IbpTrainConfig};
use rustfi_robust::TrainingInjector;
use std::sync::Arc;

/// Use case §IV-B: perturbing a trained detector creates phantom objects.
#[test]
fn detection_perturbation_creates_phantoms() {
    let scenes = DetectionSpec::coco_like().generate(20);
    let cfg = DetectorConfig::default();
    let mut det = YoloLite::new(&cfg);
    det.train(
        &scenes,
        &TrainDetectorConfig {
            epochs: 50,
            ..TrainDetectorConfig::default()
        },
    );

    // Clean detections on a held-out-ish scene (train scene is fine: we
    // compare clean vs faulty on the SAME scene).
    let scene = &scenes[1];
    let clean = det.detect(&scene.image, 0.4);
    let clean_diff = diff_detections(&clean, &scene.objects, 0.3);

    let mut fi = FaultInjector::new(det.into_net(), FiConfig::for_input(&[1, 3, 32, 32])).unwrap();
    let faults: Vec<NeuronFault> = (0..fi.profile().len())
        .map(|layer| NeuronFault {
            select: NeuronSelect::RandomInLayer { layer },
            batch: BatchSelect::All,
            model: Arc::new(models::RandomFp32Bits),
        })
        .collect();

    // Across several trials, injections must produce at least one phantom
    // or missing object (the paper's qualitative Fig. 5 finding).
    let mut disturbed = 0;
    for trial in 0..10 {
        fi.restore();
        fi.reseed(trial);
        fi.declare_neuron_fi(&faults).unwrap();
        let raw = fi.forward(&scene.image);
        let dets: Vec<_> = rustfi_detect::decode_grid(&raw, 0, cfg.num_classes)
            .into_iter()
            .filter(|d| d.score >= 0.4)
            .collect();
        let dets = rustfi_detect::nms(dets, 0.4);
        let diff = diff_detections(&dets, &scene.objects, 0.3);
        if diff.phantom > clean_diff.phantom
            || diff.missed > clean_diff.missed
            || diff.misclassified > clean_diff.misclassified
        {
            disturbed += 1;
        }
    }
    assert!(
        disturbed >= 3,
        "per-layer FP32 injections should disturb detections in several trials: {disturbed}/10"
    );
}

/// Use case §IV-C: IBP training reduces per-layer vulnerability.
#[test]
fn ibp_model_exports_and_classifies() {
    let mut spec = SynthSpec::cifar10_like().with_budget(20, 8);
    spec.noise = 0.6;
    let data = spec.generate();
    let mut ibp = IbpNet::alexnet_like(&IbpSpec::tiny(10));
    ibp.train(
        &data.train_images,
        &data.train_labels,
        &IbpTrainConfig::default(),
    );
    let mut net = ibp.to_network();
    let acc = accuracy(&mut net, &data.test_images, &data.test_labels, 16);
    assert!(acc > 0.6, "IBP-trained model accuracy {acc}");

    // The exported network is injectable like any other.
    let mut fi = FaultInjector::new(net, FiConfig::for_input(&[1, 3, 16, 16])).unwrap();
    assert!(fi.profile().len() >= 7, "five convs + two fcs");
    fi.declare_neuron_fi(&[NeuronFault {
        select: NeuronSelect::RandomInLayer { layer: 0 },
        batch: BatchSelect::All,
        model: Arc::new(models::BitFlipInt8::new(models::BitSelect::Random)),
    }])
    .unwrap();
    let out = fi.forward(&data.test_images.select_batch(0));
    assert!(!out.has_non_finite());
}

/// Use case §IV-D: training with injections yields a comparable model.
#[test]
fn fi_training_produces_comparable_model_from_same_init() {
    let mut spec = SynthSpec::cifar10_like().with_budget(16, 8);
    spec.noise = 0.6;
    let data = spec.generate();
    let cfg = TrainConfig {
        epochs: 8,
        lr: 0.02,
        batch_size: 8,
        ..TrainConfig::default()
    };

    let mut baseline = zoo::resnet18(&ZooConfig::cifar10_like());
    let base = fit(&mut baseline, &data.train_images, &data.train_labels, &cfg);
    let base_acc = accuracy(&mut baseline, &data.test_images, &data.test_labels, 16);

    let mut fi_net = zoo::resnet18(&ZooConfig::cifar10_like());
    let inj = TrainingInjector::install_hidden(&fi_net, -1.0, 1.0, 5);
    let fi_rep = fit(&mut fi_net, &data.train_images, &data.train_labels, &cfg);
    let fired = inj.injections();
    inj.remove();
    let fi_acc = accuracy(&mut fi_net, &data.test_images, &data.test_labels, 16);

    assert_eq!(base.steps, fi_rep.steps, "identical training schedule");
    assert!(fired > 0, "injections fired during training");
    assert!(base_acc > 0.7, "baseline learned: {base_acc}");
    assert!(
        (base_acc - fi_acc).abs() < 0.25,
        "FI training is accuracy-comparable: {base_acc} vs {fi_acc}"
    );
}

/// Use case §IV-E: sensitivity-ranked injections and heatmap response.
#[test]
fn gradcam_sensitivity_separates_feature_maps() {
    let mut spec = SynthSpec::cifar10_like().with_budget(16, 8);
    spec.noise = 0.6;
    let data = spec.generate();
    let mut net = zoo::lenet(&ZooConfig::cifar10_like());
    fit(
        &mut net,
        &data.train_images,
        &data.train_labels,
        &TrainConfig {
            epochs: 10,
            lr: 0.02,
            ..TrainConfig::default()
        },
    );
    let preds = predict(&mut net, &data.test_images, 16);
    let idx = preds
        .iter()
        .zip(&data.test_labels)
        .position(|(p, l)| p == l)
        .expect("a correct image exists");
    let image = data.test_images.select_batch(idx);
    let label = data.test_labels[idx];

    let conv = net
        .layer_infos()
        .iter()
        .filter(|l| l.kind == LayerKind::Conv2d)
        .map(|l| l.id)
        .nth(1)
        .unwrap();
    let clean = gradcam(&mut net, &image, label, conv);
    assert_eq!(clean.top1, label);
    let ranking = rank_feature_maps(&clean.channel_weights);
    assert!(ranking[0].1 >= ranking.last().unwrap().1);

    // Inject an egregious value into most- vs least-sensitive maps and
    // compare heatmap disturbance.
    let mut fi = FaultInjector::new(net, FiConfig::for_input(&[1, 3, 16, 16])).unwrap();
    let layer_index = fi
        .profile()
        .layers()
        .iter()
        .position(|l| l.id == conv)
        .unwrap();
    // A single random site per channel makes this comparison noisy; average
    // over several seeded sites so the ranking reflects the channel, not one
    // lucky coordinate.
    let site_samples = 5;
    let mut divergences = Vec::new();
    for (channel, _) in [*ranking.last().unwrap(), ranking[0]] {
        let mut total = 0.0;
        for sample in 0..site_samples {
            fi.restore();
            fi.reseed(0xCA11 + sample);
            fi.declare_neuron_fi(&[NeuronFault {
                select: NeuronSelect::RandomInChannel {
                    layer: layer_index,
                    channel,
                },
                batch: BatchSelect::All,
                model: Arc::new(models::StuckAt::new(10_000.0)),
            }])
            .unwrap();
            let cam = gradcam(fi.net_mut(), &image, label, conv);
            total += heatmap_divergence(&clean.heatmap, &cam.heatmap);
        }
        divergences.push(total / site_samples as f32);
    }
    // The most-sensitive-map injection disturbs the heatmap at least as
    // much as the least-sensitive one (usually far more).
    assert!(
        divergences[1] >= divergences[0],
        "most-sensitive divergence {} < least-sensitive {}",
        divergences[1],
        divergences[0]
    );
}
