//! Property-based tests (proptest) of the stack's core invariants.

use proptest::prelude::*;
use rustfi::{
    models, BatchSelect, Campaign, CampaignConfig, FaultMode, NeuronSelect, PerturbationModel,
    WeightSelect,
};
use rustfi_bench::fuzz::{self, CaseFixture};
use rustfi_nn::{zoo, ZooConfig};
use rustfi_quant::int8;
use rustfi_tensor::bits;
use rustfi_tensor::{SeededRng, Tensor};
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Quantize→dequantize error is at most half a step for in-range values.
    #[test]
    fn int8_roundtrip_error_bounded(x in -100.0f32..100.0, max_abs in 100.0f32..1000.0) {
        let scale = int8::scale_for_max_abs(max_abs);
        let err = (int8::fake_quantize(x, scale) - x).abs();
        prop_assert!(err <= scale / 2.0 + 1e-5);
    }

    /// Quantization clamps out-of-range values to the representable max.
    #[test]
    fn int8_clamps(x in prop::num::f32::NORMAL, max_abs in 0.1f32..10.0) {
        let scale = int8::scale_for_max_abs(max_abs);
        let q = int8::quantize(x, scale);
        prop_assert!((-127..=127).contains(&(q as i32)));
    }

    /// INT8 bit flips are involutive for every value and bit.
    #[test]
    fn int8_bitflip_involutive(q in any::<i8>(), bit in 0u32..8) {
        prop_assert_eq!(int8::flip_bit_i8(int8::flip_bit_i8(q, bit), bit), q);
    }

    /// The real INT8 inference path and the f32 simulation agree on stored
    /// words: the SIMD slice quantizer, the scalar helper behind the
    /// simulated mode, and [`rustfi_tensor::QTensor`]'s per-channel weight
    /// quantization all produce bit-identical `i8` words for any data —
    /// which is what makes stored-word bit flips equivalent to the paper's
    /// dequantized-domain flips.
    #[test]
    fn int8_real_and_simulated_words_agree(
        vals in prop::collection::vec(-50.0f32..50.0, 8..128),
        max_abs in 50.0f32..500.0,
    ) {
        let scale = int8::scale_for_max_abs(max_abs);
        let mut slice_out = vec![0i8; vals.len()];
        int8::quantize_slice(&vals, scale, &mut slice_out);
        for (&x, &w) in vals.iter().zip(&slice_out) {
            prop_assert_eq!(int8::quantize(x, scale), w);
        }
        // Per-channel weight words match scalar quantization against each
        // channel's own scale.
        let rows = 4;
        let cols = vals.len() / rows;
        let t = Tensor::from_vec(vals[..rows * cols].to_vec(), &[rows, cols]);
        let qt = rustfi_tensor::QTensor::quantize_per_channel(&t);
        for r in 0..rows {
            for c in 0..cols {
                let idx = r * cols + c;
                prop_assert_eq!(
                    int8::quantize(t.data()[idx], qt.channel_scale(r)),
                    qt.data()[idx]
                );
            }
        }
    }

    /// FP32 bit flips are involutive for every finite value and bit.
    #[test]
    fn fp32_bitflip_involutive(x in prop::num::f32::ANY, bit in 0u32..32) {
        let twice = bits::flip_bit_f32(bits::flip_bit_f32(x, bit), bit);
        prop_assert_eq!(twice.to_bits(), x.to_bits());
    }

    /// Softmax rows always sum to 1 and stay in [0, 1].
    #[test]
    fn softmax_is_a_distribution(vals in prop::collection::vec(-50.0f32..50.0, 2..20)) {
        let t = Tensor::from_vec(vals.clone(), &[1, vals.len()]);
        let s = t.softmax_rows();
        let sum: f32 = s.data().iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4);
        prop_assert!(s.data().iter().all(|&p| (0.0..=1.0).contains(&p)));
    }

    /// Tensor add/sub are inverses.
    #[test]
    fn add_sub_inverse(vals in prop::collection::vec(-1e3f32..1e3, 1..64)) {
        let n = vals.len();
        let a = Tensor::from_vec(vals, &[n]);
        let b = Tensor::from_fn(&[n], |i| (i as f32 * 0.31).sin() * 10.0);
        let roundtrip = a.add(&b).sub(&b);
        for (x, y) in roundtrip.data().iter().zip(a.data()) {
            prop_assert!((x - y).abs() <= 1e-2_f32.max(y.abs() * 1e-5));
        }
    }

    /// concat_channels/split_channels are inverses for arbitrary widths.
    #[test]
    fn concat_split_inverse(c1 in 1usize..5, c2 in 1usize..5, hw in 1usize..5) {
        let a = Tensor::from_fn(&[2, c1, hw, hw], |i| i as f32);
        let b = Tensor::from_fn(&[2, c2, hw, hw], |i| -(i as f32));
        let cat = Tensor::concat_channels(&[a.clone(), b.clone()]);
        let parts = cat.split_channels(&[c1, c2]);
        prop_assert_eq!(&parts[0], &a);
        prop_assert_eq!(&parts[1], &b);
    }

    /// Random fault-site resolution always produces legal coordinates.
    #[test]
    fn resolved_sites_are_always_legal(seed in any::<u64>()) {
        let mut net = zoo::lenet(&ZooConfig::tiny(10));
        let profile = rustfi::ModelProfile::discover(&mut net, [2, 3, 16, 16]);
        let mut rng = SeededRng::new(seed);
        let sites = NeuronSelect::Random
            .resolve(&profile, BatchSelect::Each, &mut rng)
            .unwrap();
        for site in sites {
            let dims = profile.layers()[site.layer].output_dims;
            prop_assert!(site.channel < dims[1]);
            prop_assert!(site.y < dims[2]);
            prop_assert!(site.x < dims[3]);
            prop_assert!(site.batch.unwrap() < 2);
        }
        let w = WeightSelect::Random.resolve(&profile, &mut rng).unwrap();
        prop_assert!(w.index < profile.layers()[w.layer].weight_count());
    }

    /// Built-in perturbation models never produce NaN from finite inputs
    /// (BitFlipFp32 may produce Inf by flipping exponent bits; NaN requires
    /// all exponent bits set, which a single flip of a finite value with a
    /// nonzero mantissa can produce only from values that are already
    /// near-NaN patterns — so we exclude it here and test the others).
    #[test]
    fn models_keep_finite_values_finite(x in -1e3f32..1e3, seed in any::<u64>()) {
        let mut rng = SeededRng::new(seed);
        let mut ctx = rustfi::PerturbCtx {
            layer: 0,
            batch: 0,
            channel: 0,
            tensor_max_abs: 1e3,
            quant_scale: None,
            rng: &mut rng,
        };
        prop_assert!(models::RandomUniform::default().perturb(x, &mut ctx).is_finite());
        prop_assert!(models::Zero.perturb(x, &mut ctx).is_finite());
        prop_assert!(models::StuckAt::new(5.0).perturb(x, &mut ctx).is_finite());
        prop_assert!(models::Gain::new(2.0).perturb(x, &mut ctx).is_finite());
        prop_assert!(models::BitFlipInt8::new(models::BitSelect::Random).perturb(x, &mut ctx).is_finite());
        prop_assert!(models::RandomFp32Bits.perturb(x, &mut ctx).is_finite());
    }

    /// NMS output is a subset of its input and never grows.
    #[test]
    fn nms_output_subset(n in 0usize..20, seed in any::<u64>()) {
        let mut rng = SeededRng::new(seed);
        let dets: Vec<rustfi_detect::Detection> = (0..n)
            .map(|_| rustfi_detect::Detection {
                class: rng.below(3),
                score: rng.uniform(0.0, 1.0),
                cx: rng.uniform(0.1, 0.9),
                cy: rng.uniform(0.1, 0.9),
                w: rng.uniform(0.05, 0.3),
                h: rng.uniform(0.05, 0.3),
            })
            .collect();
        let kept = rustfi_detect::nms(dets.clone(), 0.5);
        prop_assert!(kept.len() <= dets.len());
        for k in &kept {
            prop_assert!(dets.iter().any(|d| d == k));
        }
    }

    /// IoU is symmetric and within [0, 1].
    #[test]
    fn iou_bounds_and_symmetry(
        cx1 in 0.1f32..0.9, cy1 in 0.1f32..0.9, w1 in 0.05f32..0.5,
        cx2 in 0.1f32..0.9, cy2 in 0.1f32..0.9, w2 in 0.05f32..0.5,
    ) {
        let mk = |cx, cy, w| rustfi_detect::Detection {
            class: 0, score: 1.0, cx, cy, w, h: w,
        };
        let a = mk(cx1, cy1, w1);
        let b = mk(cx2, cy2, w2);
        let i1 = rustfi_detect::iou(&a, &b);
        let i2 = rustfi_detect::iou(&b, &a);
        prop_assert!((0.0..=1.0 + 1e-6).contains(&i1));
        prop_assert!((i1 - i2).abs() < 1e-5);
    }

    /// Trial isolation never breaks campaign determinism: for any generated
    /// architecture and any crash probability, a campaign whose
    /// perturbation model panics on a seeded fraction of trials produces
    /// identical records — including *which* trials crashed — on 1 worker
    /// and on 4, and accounts for every trial.
    #[test]
    fn crashy_campaigns_are_thread_count_invariant(
        case in fuzz::cases(),
        crash_p in 0.05f64..0.5,
    ) {
        let mut case = case;
        // The crashy model perturbs f32 activations directly; pin the
        // quantization regime so the fixture probe matches.
        case.quant = rustfi::QuantMode::Off;
        let fx = CaseFixture::new(&case).unwrap();
        let factory = fx.factory();
        let campaign = Campaign::new(
            &factory,
            &fx.images,
            &fx.labels,
            FaultMode::Neuron(NeuronSelect::Random),
            Arc::new(models::Custom::new("crashy", move |old, ctx| {
                if ctx.rng.chance(crash_p) {
                    panic!("seeded perturbation crash");
                }
                old + 1e5
            })),
        );
        let run = |threads| {
            campaign
                .run(&CampaignConfig {
                    threads: Some(threads),
                    ..case.reference_config()
                })
                .unwrap()
        };
        let single = run(1);
        let four = run(4);
        prop_assert_eq!(&single, &four);
        prop_assert_eq!(single.counts.total(), case.trials);
    }

    /// Observability is read-only: for any generated architecture and
    /// execution strategy, campaigns run with no recorder, with the
    /// [`rustfi_obs::NullRecorder`], with the full
    /// [`rustfi_obs::TraceRecorder`], and with the fleet-telemetry stack
    /// (disk-streaming [`rustfi_obs::SidecarRecorder`] fanned out with a
    /// [`rustfi_obs::FlightRecorder`] ring) produce bit-identical trial
    /// records.
    #[test]
    fn recorders_never_perturb_campaign_results(case in fuzz::cases()) {
        use rustfi_obs::{
            FanoutRecorder, FlightRecorder, NullRecorder, Recorder, SidecarRecorder,
            TraceRecorder,
        };
        let fx = CaseFixture::new(&case).unwrap();
        let factory = fx.factory();
        let campaign = Campaign::new(
            &factory,
            &fx.images,
            &fx.labels,
            fx.mode.clone(),
            Arc::clone(&fx.model),
        );
        // Every run uses the case's full accelerated strategy (threads,
        // fusion, prefix cache, pooling) so only the recorder varies.
        let run = |recorder: Option<Arc<dyn Recorder>>| {
            campaign
                .run(&CampaignConfig {
                    recorder,
                    ..case.accelerated_config()
                })
                .unwrap()
        };
        let plain = run(None);
        let null = run(Some(Arc::new(NullRecorder)));
        let trace_rec = Arc::new(TraceRecorder::new());
        let traced = run(Some(trace_rec.clone() as Arc<dyn Recorder>));
        prop_assert_eq!(&plain, &null);
        prop_assert_eq!(&plain, &traced);
        let snap = trace_rec.snapshot();
        // Serial trials get a "trial" span each; fused ones are covered by
        // "fused" chunk spans. The per-trial outcome *events* are the
        // strategy-invariant stream, so count those.
        prop_assert_eq!(
            snap.events
                .iter()
                .filter(|e| matches!(e, rustfi_obs::Event::TrialOutcome(_)))
                .count(),
            case.trials
        );
        prop_assert_eq!(snap.counters.get("fi.injections").copied().unwrap_or(0) > 0, true);

        // The fleet-telemetry stack streams to disk mid-campaign, which
        // must be just as invisible as the in-memory recorders.
        let dir = std::env::temp_dir().join(format!(
            "rustfi_props_sidecar_{}_{:x}",
            std::process::id(),
            case.seed
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let sidecar = SidecarRecorder::create(&dir.join("run.telemetry.jsonl"), 0, 1, 0).unwrap();
        let flight = FlightRecorder::new(64).with_path(&dir.join("run.flight"), None);
        let fanout = Arc::new(FanoutRecorder::new(vec![
            Arc::new(sidecar) as Arc<dyn Recorder>,
            Arc::new(flight) as Arc<dyn Recorder>,
        ]));
        let observed = run(Some(fanout as Arc<dyn Recorder>));
        prop_assert_eq!(&plain, &observed);
        let sc = rustfi_obs::read_sidecar(&dir.join("run.telemetry.jsonl")).unwrap();
        prop_assert_eq!(sc.torn_lines, 0);
        prop_assert_eq!(
            sc.batch
                .events
                .iter()
                .filter(|e| matches!(e, rustfi_obs::Event::TrialOutcome(_)))
                .count(),
            case.trials
        );
        prop_assert!(rustfi_obs::read_flight(&dir.join("run.flight")).unwrap().seq > 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Golden-prefix caching is purely a throughput optimization: for any
    /// seed, worker count, and byte budget — including budgets so small the
    /// cache thrashes and trials constantly fall back to full forward
    /// passes — a prefix-cached campaign's records are bit-identical to an
    /// uncached run, and every trial's lookup is accounted as a hit or miss.
    #[test]
    fn prefix_caching_never_changes_records(
        case in fuzz::cases(),
        // log2 of the budget in KiB: 4 KiB (thrashing) up to 2 GiB (holds
        // every prefix).
        budget_log2_kib in 2u32..21,
    ) {
        let fx = CaseFixture::new(&case).unwrap();
        let factory = fx.factory();
        let campaign = Campaign::new(
            &factory,
            &fx.images,
            &fx.labels,
            fx.mode.clone(),
            Arc::clone(&fx.model),
        );
        let run = |prefix_cache, threads: usize| {
            campaign
                .run(&CampaignConfig {
                    threads: Some(threads),
                    prefix_cache,
                    ..case.reference_config()
                })
                .unwrap()
        };
        let budget = 1usize << (10 + budget_log2_kib);
        let plain = run(None, 1);
        let cached = run(
            Some(rustfi::PrefixCacheConfig::with_budget(budget)),
            case.threads,
        );
        prop_assert_eq!(&plain.records, &cached.records);
        prop_assert_eq!(plain.counts, cached.counts);
        let stats = cached.prefix.unwrap();
        prop_assert_eq!(stats.hits + stats.misses, case.trials as u64);
        prop_assert!(stats.bytes <= budget);
    }

    /// Fused batched trials produce bit-identical records to serial
    /// execution for every generated architecture, fusion width, guard
    /// mode, quantization regime, and prefix-cache setting.
    #[test]
    fn fusion_never_changes_records(
        case in fuzz::cases(),
        width in 2usize..9,
        with_prefix in any::<bool>(),
    ) {
        let mut case = case;
        // Fusion stands down for weight faults (they mutate shared model
        // state); this test is about fusion, so pin neuron faults.
        case.weight_fault = false;
        let fx = CaseFixture::new(&case).unwrap();
        let factory = fx.factory();
        let campaign = Campaign::new(
            &factory,
            &fx.images,
            &fx.labels,
            fx.mode.clone(),
            Arc::clone(&fx.model),
        );
        let prefix_cache = with_prefix.then(rustfi::PrefixCacheConfig::default);
        let run = |fusion, threads: usize| {
            campaign
                .run(&CampaignConfig {
                    threads: Some(threads),
                    prefix_cache: prefix_cache.clone(),
                    fusion,
                    ..case.reference_config()
                })
                .unwrap()
        };
        let serial = run(None, 1);
        let fused = run(Some(rustfi::FusionConfig::with_width(width)), case.threads);
        prop_assert_eq!(&serial.records, &fused.records);
        prop_assert_eq!(serial.counts, fused.counts);
        let stats = fused.fusion.unwrap();
        prop_assert_eq!(stats.fused_trials + stats.serial_trials, case.trials as u64);
        prop_assert!(stats.max_width <= width);
        if with_prefix {
            let p = fused.prefix.unwrap();
            prop_assert_eq!(p.hits + p.misses, case.trials as u64);
        }
    }

    /// Compiled forward plans — weight prepacking into GEMM panel layouts,
    /// fused bias/activation/batchnorm epilogues, and per-trial panel
    /// repacks under weight faults — are purely a throughput optimization:
    /// for every generated architecture, fault mode, quantization regime,
    /// guard mode, thread count, fusion width, and prefix-cache setting,
    /// a planned campaign's records are bit-identical to the unplanned run.
    #[test]
    fn prepacking_never_changes_records(
        case in fuzz::cases(),
        with_fusion in any::<bool>(),
        with_prefix in any::<bool>(),
    ) {
        let fx = CaseFixture::new(&case).unwrap();
        let factory = fx.factory();
        let campaign = Campaign::new(
            &factory,
            &fx.images,
            &fx.labels,
            fx.mode.clone(),
            Arc::clone(&fx.model),
        );
        // Fusion stands down for weight faults on its own; the prefix cache
        // composes with planning in both arms.
        let run = |plan: bool, threads: usize| {
            campaign
                .run(&CampaignConfig {
                    threads: Some(threads),
                    fusion: with_fusion.then(|| rustfi::FusionConfig::with_width(4)),
                    prefix_cache: with_prefix.then(rustfi::PrefixCacheConfig::default),
                    plan,
                    ..case.reference_config()
                })
                .unwrap()
        };
        let unplanned = run(false, 1);
        let planned_serial = run(true, 1);
        let planned_threaded = run(true, case.threads);
        prop_assert_eq!(&unplanned.records, &planned_serial.records);
        prop_assert_eq!(&unplanned.records, &planned_threaded.records);
        prop_assert_eq!(unplanned.counts, planned_threaded.counts);
    }

    /// Thread-local tensor pooling produces bit-identical records to the
    /// unpooled path for every generated architecture and execution
    /// strategy — recycling activation buffers must be unobservable in
    /// results.
    #[test]
    fn tensor_pool_never_changes_records(case in fuzz::cases()) {
        let fx = CaseFixture::new(&case).unwrap();
        let factory = fx.factory();
        let campaign = Campaign::new(
            &factory,
            &fx.images,
            &fx.labels,
            fx.mode.clone(),
            Arc::clone(&fx.model),
        );
        // Everything but the pool budget comes from the case's accelerated
        // strategy (threads, fusion, prefix cache, guard, quantization).
        let run = |pool_budget_bytes: usize| {
            campaign
                .run(&CampaignConfig {
                    pool_budget_bytes,
                    ..case.accelerated_config()
                })
                .unwrap()
        };
        let unpooled = run(0);
        let pooled = run(128 << 20);
        prop_assert_eq!(&unpooled.records, &pooled.records);
        prop_assert_eq!(unpooled.counts, pooled.counts);
    }

    /// Interval convolution bounds always contain the nominal output.
    #[test]
    fn interval_conv_soundness(seed in any::<u64>(), eps in 0.0f32..0.5) {
        let mut rng = SeededRng::new(seed);
        let x = Tensor::rand_normal(&[1, 2, 5, 5], 0.0, 1.0, &mut rng);
        let w = Tensor::rand_normal(&[2, 2, 3, 3], 0.0, 0.5, &mut rng);
        let b = Tensor::rand_normal(&[2], 0.0, 0.1, &mut rng);
        let spec = rustfi_tensor::ConvSpec::new().padding(1);
        let y = rustfi_tensor::conv2d(&x, &w, &b, &spec);
        let (lo, hi) = rustfi_robust::interval::conv_interval(
            &x.add_scalar(-eps),
            &x.add_scalar(eps),
            &w,
            &b,
            &spec,
        );
        for ((l, v), h) in lo.data().iter().zip(y.data()).zip(hi.data()) {
            prop_assert!(*l <= v + 1e-3, "{l} > {v}");
            prop_assert!(*v <= h + 1e-3, "{v} > {h}");
        }
    }
}

proptest! {
    // Each case runs a dozen full campaigns (one unsharded reference plus
    // every shard of four different plans), so this block gets a smaller
    // case budget than the cheap invariants above.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Shard invariance, the distributed-campaign analogue of thread
    /// invariance: for any generated architecture and execution strategy,
    /// splitting a campaign into 1, 2, 3, or 5 shards — each run
    /// independently through its own journal, as fleet worker processes
    /// would — and merging the shard journals yields records and counts
    /// identical to the unsharded run.
    #[test]
    fn shard_invariance(case in fuzz::cases()) {
        let fx = CaseFixture::new(&case).unwrap();
        let factory = fx.factory();
        let campaign = Campaign::new(
            &factory,
            &fx.images,
            &fx.labels,
            fx.mode.clone(),
            Arc::clone(&fx.model),
        );
        // Each shard runs the case's full accelerated strategy (threads,
        // fusion, prefix cache, pooling, quantization, guard).
        let cfg = case.accelerated_config();
        let reference = campaign.run(&cfg).unwrap();
        for count in [1usize, 2, 3, 5] {
            let dir = std::env::temp_dir().join("rustfi-shard-invariance").join(format!(
                "{}-{:x}-{count}",
                std::process::id(),
                case.seed
            ));
            let _ = std::fs::remove_dir_all(&dir);
            std::fs::create_dir_all(&dir).unwrap();
            let mut paths = Vec::new();
            for spec in rustfi::plan_shards(cfg.trials, count) {
                let path = spec.journal_path(&dir);
                campaign.run_shard(&cfg, &spec, &path).unwrap();
                paths.push(path);
            }
            let merged = rustfi::merge_shard_journals(&paths).unwrap();
            prop_assert!(merged.is_complete(), "{count} shards left gaps");
            prop_assert_eq!(&merged.records, &reference.records, "{} shards", count);
            prop_assert_eq!(merged.counts, reference.counts);
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    /// Real-INT8 campaigns (integer kernels, stored-word bit flips) are
    /// invariant under every execution strategy, exactly like f32 ones —
    /// and that holds on architectures containing `Residual` and `Branches`
    /// containers, where the INT8 backend interacts with resume points:
    /// records are bit-identical between a serial run and a multi-threaded
    /// fused+prefix-cached run, and between the unsharded run and a merged
    /// 3-shard run — for neuron and weight faults alike.
    #[test]
    fn int8_campaigns_are_execution_invariant(case in fuzz::container_cases()) {
        let mut case = case;
        // Pin the quantization regime to real INT8; the fixture then picks
        // the stored-word bit-flip model and the calibrated INT8 probe.
        case.quant = rustfi::QuantMode::Int8;
        prop_assert!(case.arch.has_residual() && case.arch.has_branches());
        let fx = CaseFixture::new(&case).unwrap();
        let factory = fx.factory();
        let campaign = Campaign::new(
            &factory,
            &fx.images,
            &fx.labels,
            fx.mode.clone(),
            Arc::clone(&fx.model),
        );
        let cfg = case.reference_config();
        let serial = campaign.run(&cfg).unwrap();
        prop_assert_eq!(serial.counts.total(), case.trials);
        let accelerated = campaign
            .run(&CampaignConfig {
                fusion: Some(rustfi::FusionConfig::with_width(case.fusion_width.max(2))),
                prefix_cache: Some(rustfi::PrefixCacheConfig::default()),
                ..case.accelerated_config()
            })
            .unwrap();
        prop_assert_eq!(&serial.records, &accelerated.records);
        prop_assert_eq!(serial.counts, accelerated.counts);
        // Shard invariance: the calibration table comes from the full image
        // set, so shards quantize on the same grid.
        let dir = std::env::temp_dir()
            .join("rustfi-int8-invariance")
            .join(format!("{}-{:x}", std::process::id(), case.seed));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let mut paths = Vec::new();
        for spec in rustfi::plan_shards(cfg.trials, 3) {
            let path = spec.journal_path(&dir);
            campaign.run_shard(&cfg, &spec, &path).unwrap();
            paths.push(path);
        }
        let merged = rustfi::merge_shard_journals(&paths).unwrap();
        prop_assert!(merged.is_complete());
        prop_assert_eq!(&merged.records, &serial.records);
        prop_assert_eq!(merged.counts, serial.counts);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
