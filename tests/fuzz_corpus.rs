//! Deterministic replay of the differential-fuzzer regression corpus.
//!
//! Every `tests/regressions/*.case` file is parsed and run through the full
//! differential harness (`rustfi_bench::fuzz::run_case`) on every `cargo
//! test`, so a case that once exposed a strategy divergence guards the fix
//! in tier-1 CI forever. An empty or missing corpus directory passes — the
//! corpus only grows when `fuzz_gate` finds something.

use rustfi_bench::fuzz::{parse_case_file, run_case};
use std::path::PathBuf;

fn corpus_dir() -> PathBuf {
    PathBuf::from(format!("{}/tests/regressions", env!("CARGO_MANIFEST_DIR")))
}

#[test]
fn regression_corpus_replays_clean() {
    let dir = corpus_dir();
    let Ok(entries) = std::fs::read_dir(&dir) else {
        eprintln!("no corpus at {} — nothing to replay", dir.display());
        return;
    };
    let mut paths: Vec<PathBuf> = entries
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "case"))
        .collect();
    paths.sort();
    for path in &paths {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("?");
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("{name}: unreadable corpus file: {e}"));
        let case =
            parse_case_file(&text).unwrap_or_else(|e| panic!("{name}: unparseable case: {e}"));
        let report = run_case(&case).unwrap_or_else(|f| panic!("{name}: {f}"));
        eprintln!(
            "replayed {name}: legs={} trials={} eligible={}",
            report.legs, report.trials_run, report.eligible_images
        );
    }
    eprintln!("replayed {} corpus case(s)", paths.len());
}

#[test]
fn corpus_files_round_trip_through_the_serializer() {
    let dir = corpus_dir();
    let Ok(entries) = std::fs::read_dir(&dir) else {
        return;
    };
    for entry in entries.filter_map(|e| e.ok()) {
        let path = entry.path();
        if path.extension().is_none_or(|x| x != "case") {
            continue;
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let case = parse_case_file(&text).unwrap();
        let reparsed = parse_case_file(&case.to_case_file()).unwrap();
        assert_eq!(case, reparsed, "{}", path.display());
    }
}
