//! End-to-end integration tests spanning the whole stack: synthetic data →
//! training → fault injection → outcome metrics.

use rustfi::{
    models, BatchSelect, Campaign, CampaignConfig, FaultInjector, FaultMode, FiConfig, NeuronFault,
    NeuronSelect, OutcomeKind, WeightFault, WeightSelect,
};
use rustfi_data::SynthSpec;
use rustfi_nn::train::{accuracy, fit, TrainConfig};
use rustfi_nn::{checkpoint, zoo, Network, ZooConfig};
use std::sync::Arc;

fn small_dataset() -> rustfi_data::ClassificationDataset {
    let mut spec = SynthSpec::cifar10_like().with_budget(12, 6);
    spec.noise = 0.6;
    spec.generate()
}

fn trained_lenet(data: &rustfi_data::ClassificationDataset) -> Network {
    let mut net = zoo::lenet(&ZooConfig::cifar10_like());
    fit(
        &mut net,
        &data.train_images,
        &data.train_labels,
        &TrainConfig {
            epochs: 10,
            lr: 0.02,
            ..TrainConfig::default()
        },
    );
    net
}

#[test]
fn train_inject_measure_pipeline() {
    let data = small_dataset();
    let mut net = trained_lenet(&data);
    let acc = accuracy(&mut net, &data.test_images, &data.test_labels, 16);
    assert!(acc > 0.8, "trained model accuracy {acc}");

    // Zero-value injections in the logits layer must change some outcomes.
    let mut fi = FaultInjector::new(net, FiConfig::for_input(&[1, 3, 16, 16])).unwrap();
    let last = fi.profile().len() - 1;
    let mut outcomes = Vec::new();
    for i in 0..data.test_len() {
        fi.restore();
        fi.reseed(i as u64);
        fi.declare_neuron_fi(&[NeuronFault {
            select: NeuronSelect::RandomInLayer { layer: last },
            batch: BatchSelect::All,
            model: Arc::new(models::StuckAt::new(1e4)),
        }])
        .unwrap();
        let x = data.test_images.select_batch(i);
        let out = fi.forward(&x);
        outcomes.push(rustfi::classify_outcome(data.test_labels[i], out.data()));
    }
    let sdc = outcomes.iter().filter(|o| **o == OutcomeKind::Sdc).count();
    assert!(
        sdc > data.test_len() / 2,
        "a stuck-at-1e4 logit should usually win Top-1: {sdc}/{}",
        data.test_len()
    );
}

#[test]
fn campaign_over_trained_model_with_checkpoint_factory() {
    let data = small_dataset();
    let mut net = trained_lenet(&data);
    let ckpt = std::env::temp_dir().join(format!("rustfi-it-{}.ckpt", std::process::id()));
    checkpoint::save(&mut net, &ckpt).unwrap();
    let path = ckpt.clone();
    let factory = move || {
        let mut n = zoo::lenet(&ZooConfig::cifar10_like());
        checkpoint::load(&mut n, &path).unwrap();
        n
    };

    let campaign = Campaign::new(
        &factory,
        &data.test_images,
        &data.test_labels,
        FaultMode::Neuron(NeuronSelect::Random),
        Arc::new(models::BitFlipInt8::new(models::BitSelect::Random)),
    );
    let result = campaign
        .run(&CampaignConfig {
            trials: 300,
            seed: 3,
            threads: Some(3),
            int8_activations: true,
            ..CampaignConfig::default()
        })
        .unwrap();
    assert_eq!(result.counts.total(), 300);
    assert!(result.eligible_images > data.test_len() / 2);
    // Single INT8 bit flips are mostly masked (the paper's headline).
    assert!(
        result.counts.masked > 250,
        "bit flips should be mostly masked: {:?}",
        result.counts
    );
    std::fs::remove_file(&ckpt).ok();
}

#[test]
fn bigger_perturbations_cause_more_corruption() {
    let data = small_dataset();
    let mut net = trained_lenet(&data);
    let ckpt = std::env::temp_dir().join(format!("rustfi-it2-{}.ckpt", std::process::id()));
    checkpoint::save(&mut net, &ckpt).unwrap();
    let path = ckpt.clone();
    let factory = move || {
        let mut n = zoo::lenet(&ZooConfig::cifar10_like());
        checkpoint::load(&mut n, &path).unwrap();
        n
    };

    let run = |model: Arc<dyn rustfi::PerturbationModel>| {
        Campaign::new(
            &factory,
            &data.test_images,
            &data.test_labels,
            FaultMode::Neuron(NeuronSelect::Random),
            model,
        )
        .run(&CampaignConfig {
            trials: 250,
            seed: 9,
            ..CampaignConfig::default()
        })
        .unwrap()
        .counts
    };
    let small = run(Arc::new(models::RandomUniform::new(-0.01, 0.01)));
    let huge = run(Arc::new(models::StuckAt::new(1e8)));
    assert!(
        huge.sdc + huge.due > small.sdc + small.due,
        "1e8 stuck-at ({huge:?}) should corrupt more than ±0.01 noise ({small:?})"
    );
    std::fs::remove_file(&ckpt).ok();
}

#[test]
fn crashy_campaign_completes_isolates_and_resumes() {
    let data = small_dataset();
    let mut net = trained_lenet(&data);
    let ckpt = std::env::temp_dir().join(format!("rustfi-it3-{}.ckpt", std::process::id()));
    checkpoint::save(&mut net, &ckpt).unwrap();
    let path = ckpt.clone();
    let factory = move || {
        let mut n = zoo::lenet(&ZooConfig::cifar10_like());
        checkpoint::load(&mut n, &path).unwrap();
        n
    };

    // A perturbation model that panics on a seeded ~15% of trials.
    let campaign = Campaign::new(
        &factory,
        &data.test_images,
        &data.test_labels,
        FaultMode::Neuron(NeuronSelect::Random),
        Arc::new(models::Custom::new("crashy", |old, ctx| {
            if ctx.rng.chance(0.15) {
                panic!("simulated perturbation bug");
            }
            old * -8.0
        })),
    );
    let cfg = CampaignConfig {
        trials: 60,
        seed: 21,
        threads: Some(2),
        ..CampaignConfig::default()
    };
    let result = campaign.run(&cfg).unwrap();
    assert_eq!(result.counts.total(), 60, "every trial completes");
    assert!(
        result.counts.crash > 0,
        "some trials crash: {:?}",
        result.counts
    );
    // Crash isolation keeps determinism across thread counts.
    let single = campaign
        .run(&CampaignConfig {
            threads: Some(1),
            ..cfg.clone()
        })
        .unwrap();
    assert_eq!(result, single);

    // Journal, kill after a prefix, resume: bit-identical result.
    let journal = std::env::temp_dir().join(format!("rustfi-it3-{}.jsonl", std::process::id()));
    std::fs::remove_file(&journal).ok();
    let journaled = campaign.run_journaled(&cfg, &journal).unwrap();
    assert_eq!(journaled, result);
    let text = std::fs::read_to_string(&journal).unwrap();
    let prefix: Vec<&str> = text.lines().take(20).collect();
    std::fs::write(&journal, format!("{}\n", prefix.join("\n"))).unwrap();
    let resumed = campaign.resume(&cfg, &journal).unwrap();
    assert_eq!(resumed, result, "resume is bit-identical");

    std::fs::remove_file(&ckpt).ok();
    std::fs::remove_file(&journal).ok();
}

#[test]
fn weight_faults_persist_across_inferences_and_restore() {
    let data = small_dataset();
    let net = trained_lenet(&data);
    let mut fi = FaultInjector::new(net, FiConfig::for_input(&[1, 3, 16, 16])).unwrap();
    let x = data.test_images.select_batch(0);
    let clean = fi.forward(&x);
    fi.declare_weight_fi(&[WeightFault {
        select: WeightSelect::RandomInLayer { layer: 0 },
        model: Arc::new(models::Gain::new(-50.0)),
    }])
    .unwrap();
    let f1 = fi.forward(&x);
    let f2 = fi.forward(&x);
    assert_eq!(f1, f2, "offline weight faults are stable across inferences");
    assert_ne!(clean, f1);
    fi.restore();
    assert_eq!(fi.forward(&x), clean);
}

#[test]
fn int8_quantization_barely_moves_accuracy() {
    // The quantized-network emulation itself must not break the model —
    // otherwise Fig. 4's "quantized networks" premise is violated.
    let data = small_dataset();
    let net = trained_lenet(&data);
    let mut fi = FaultInjector::new(net, FiConfig::for_input(&[1, 3, 16, 16])).unwrap();
    let count_correct = |fi: &mut FaultInjector| {
        let mut correct = 0;
        for i in 0..data.test_len() {
            let out = fi.forward(&data.test_images.select_batch(i));
            if rustfi::metrics::top1(out.data()) == data.test_labels[i] {
                correct += 1;
            }
        }
        correct
    };
    let fp32 = count_correct(&mut fi);
    fi.enable_int8_activations();
    let int8 = count_correct(&mut fi);
    assert!(
        (fp32 as i64 - int8 as i64).abs() <= 2,
        "INT8 emulation changed accuracy too much: {fp32} vs {int8}"
    );
}

#[test]
fn every_zoo_model_survives_wrapping_and_random_injection() {
    let cfg = ZooConfig::tiny(6);
    for name in zoo::model_names() {
        let net = zoo::by_name(name, &cfg).unwrap();
        let mut fi = FaultInjector::new(net, FiConfig::for_input(&[1, 3, 16, 16]))
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        fi.declare_neuron_fi(&[NeuronFault {
            select: NeuronSelect::Random,
            batch: BatchSelect::All,
            model: Arc::new(models::RandomUniform::default()),
        }])
        .unwrap_or_else(|e| panic!("{name}: {e}"));
        let out = fi.forward(&rustfi_tensor::Tensor::ones(&[1, 3, 16, 16]));
        assert_eq!(out.dims(), &[1, 6], "{name}");
        assert_eq!(fi.injections_applied(), 1, "{name}");
    }
}
