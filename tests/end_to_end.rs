//! End-to-end integration tests spanning the whole stack: synthetic data →
//! training → fault injection → outcome metrics.

use rustfi::{
    models, BatchSelect, Campaign, CampaignConfig, FaultInjector, FaultMode, FiConfig, NeuronFault,
    NeuronSelect, OutcomeKind, WeightFault, WeightSelect,
};
use rustfi_data::SynthSpec;
use rustfi_nn::train::{accuracy, fit, TrainConfig};
use rustfi_nn::{checkpoint, zoo, Network, ZooConfig};
use std::sync::Arc;

fn small_dataset() -> rustfi_data::ClassificationDataset {
    let mut spec = SynthSpec::cifar10_like().with_budget(12, 6);
    spec.noise = 0.6;
    spec.generate()
}

fn trained_lenet(data: &rustfi_data::ClassificationDataset) -> Network {
    let mut net = zoo::lenet(&ZooConfig::cifar10_like());
    fit(
        &mut net,
        &data.train_images,
        &data.train_labels,
        &TrainConfig {
            epochs: 10,
            lr: 0.02,
            ..TrainConfig::default()
        },
    );
    net
}

#[test]
fn train_inject_measure_pipeline() {
    let data = small_dataset();
    let mut net = trained_lenet(&data);
    let acc = accuracy(&mut net, &data.test_images, &data.test_labels, 16);
    assert!(acc > 0.8, "trained model accuracy {acc}");

    // Zero-value injections in the logits layer must change some outcomes.
    let mut fi = FaultInjector::new(net, FiConfig::for_input(&[1, 3, 16, 16])).unwrap();
    let last = fi.profile().len() - 1;
    let mut outcomes = Vec::new();
    for i in 0..data.test_len() {
        fi.restore();
        fi.reseed(i as u64);
        fi.declare_neuron_fi(&[NeuronFault {
            select: NeuronSelect::RandomInLayer { layer: last },
            batch: BatchSelect::All,
            model: Arc::new(models::StuckAt::new(1e4)),
        }])
        .unwrap();
        let x = data.test_images.select_batch(i);
        let out = fi.forward(&x);
        outcomes.push(rustfi::classify_outcome(data.test_labels[i], out.data()));
    }
    let sdc = outcomes.iter().filter(|o| **o == OutcomeKind::Sdc).count();
    assert!(
        sdc > data.test_len() / 2,
        "a stuck-at-1e4 logit should usually win Top-1: {sdc}/{}",
        data.test_len()
    );
}

#[test]
fn campaign_over_trained_model_with_checkpoint_factory() {
    let data = small_dataset();
    let mut net = trained_lenet(&data);
    let ckpt = std::env::temp_dir().join(format!("rustfi-it-{}.ckpt", std::process::id()));
    checkpoint::save(&mut net, &ckpt).unwrap();
    let path = ckpt.clone();
    let factory = move || {
        let mut n = zoo::lenet(&ZooConfig::cifar10_like());
        checkpoint::load(&mut n, &path).unwrap();
        n
    };

    let campaign = Campaign::new(
        &factory,
        &data.test_images,
        &data.test_labels,
        FaultMode::Neuron(NeuronSelect::Random),
        Arc::new(models::BitFlipInt8::new(models::BitSelect::Random)),
    );
    let result = campaign
        .run(&CampaignConfig {
            trials: 300,
            seed: 3,
            threads: Some(3),
            quant: rustfi::QuantMode::Simulated,
            ..CampaignConfig::default()
        })
        .unwrap();
    assert_eq!(result.counts.total(), 300);
    assert!(result.eligible_images > data.test_len() / 2);
    // Single INT8 bit flips are mostly masked (the paper's headline).
    assert!(
        result.counts.masked > 250,
        "bit flips should be mostly masked: {:?}",
        result.counts
    );
    std::fs::remove_file(&ckpt).ok();
}

#[test]
fn bigger_perturbations_cause_more_corruption() {
    let data = small_dataset();
    let mut net = trained_lenet(&data);
    let ckpt = std::env::temp_dir().join(format!("rustfi-it2-{}.ckpt", std::process::id()));
    checkpoint::save(&mut net, &ckpt).unwrap();
    let path = ckpt.clone();
    let factory = move || {
        let mut n = zoo::lenet(&ZooConfig::cifar10_like());
        checkpoint::load(&mut n, &path).unwrap();
        n
    };

    let run = |model: Arc<dyn rustfi::PerturbationModel>| {
        Campaign::new(
            &factory,
            &data.test_images,
            &data.test_labels,
            FaultMode::Neuron(NeuronSelect::Random),
            model,
        )
        .run(&CampaignConfig {
            trials: 250,
            seed: 9,
            ..CampaignConfig::default()
        })
        .unwrap()
        .counts
    };
    let small = run(Arc::new(models::RandomUniform::new(-0.01, 0.01)));
    let huge = run(Arc::new(models::StuckAt::new(1e8)));
    assert!(
        huge.sdc + huge.due > small.sdc + small.due,
        "1e8 stuck-at ({huge:?}) should corrupt more than ±0.01 noise ({small:?})"
    );
    std::fs::remove_file(&ckpt).ok();
}

#[test]
fn crashy_campaign_completes_isolates_and_resumes() {
    let data = small_dataset();
    let mut net = trained_lenet(&data);
    let ckpt = std::env::temp_dir().join(format!("rustfi-it3-{}.ckpt", std::process::id()));
    checkpoint::save(&mut net, &ckpt).unwrap();
    let path = ckpt.clone();
    let factory = move || {
        let mut n = zoo::lenet(&ZooConfig::cifar10_like());
        checkpoint::load(&mut n, &path).unwrap();
        n
    };

    // A perturbation model that panics on a seeded ~15% of trials.
    let campaign = Campaign::new(
        &factory,
        &data.test_images,
        &data.test_labels,
        FaultMode::Neuron(NeuronSelect::Random),
        Arc::new(models::Custom::new("crashy", |old, ctx| {
            if ctx.rng.chance(0.15) {
                panic!("simulated perturbation bug");
            }
            old * -8.0
        })),
    );
    let cfg = CampaignConfig {
        trials: 60,
        seed: 21,
        threads: Some(2),
        ..CampaignConfig::default()
    };
    let result = campaign.run(&cfg).unwrap();
    assert_eq!(result.counts.total(), 60, "every trial completes");
    assert!(
        result.counts.crash > 0,
        "some trials crash: {:?}",
        result.counts
    );
    // Crash isolation keeps determinism across thread counts.
    let single = campaign
        .run(&CampaignConfig {
            threads: Some(1),
            ..cfg.clone()
        })
        .unwrap();
    assert_eq!(result, single);

    // Journal, kill after a prefix, resume: bit-identical result.
    let journal = std::env::temp_dir().join(format!("rustfi-it3-{}.jsonl", std::process::id()));
    std::fs::remove_file(&journal).ok();
    let journaled = campaign.run_journaled(&cfg, &journal).unwrap();
    assert_eq!(journaled, result);
    let text = std::fs::read_to_string(&journal).unwrap();
    let prefix: Vec<&str> = text.lines().take(20).collect();
    std::fs::write(&journal, format!("{}\n", prefix.join("\n"))).unwrap();
    let resumed = campaign.resume(&cfg, &journal).unwrap();
    assert_eq!(resumed, result, "resume is bit-identical");

    // Same kill-and-resume story with trial fusion enabled: the resumed
    // run re-plans fused units over only the missing trials, and must
    // still land bit-identical to the uninterrupted fused run.
    let fused_cfg = CampaignConfig {
        fusion: Some(rustfi::FusionConfig::default()),
        ..cfg.clone()
    };
    let fused = campaign.run(&fused_cfg).unwrap();
    assert_eq!(
        fused.records, result.records,
        "fusion changes no records even with crashing trials"
    );
    std::fs::remove_file(&journal).ok();
    campaign.run_journaled(&fused_cfg, &journal).unwrap();
    let text = std::fs::read_to_string(&journal).unwrap();
    let prefix: Vec<&str> = text.lines().take(20).collect();
    std::fs::write(&journal, format!("{}\n", prefix.join("\n"))).unwrap();
    let resumed = campaign.resume(&fused_cfg, &journal).unwrap();
    // Fusion *stats* legitimately differ (the resume fuses only the missing
    // trials); the report itself must be bit-identical.
    assert_eq!(resumed.records, fused.records, "fused resume records");
    assert_eq!(resumed.counts, fused.counts, "fused resume counts");
    assert_eq!(resumed.per_layer, fused.per_layer, "fused resume per-layer");

    std::fs::remove_file(&ckpt).ok();
    std::fs::remove_file(&journal).ok();
}

/// Cheap, untrained fixture for journal-robustness tests: a seeded tiny
/// LeNet labeled with its own clean predictions, so every image is
/// campaign-eligible without a training run.
fn tiny_fixture() -> (rustfi_tensor::Tensor, Vec<usize>) {
    let images = rustfi_tensor::Tensor::from_fn(&[5, 3, 16, 16], |i| ((i as f32) * 0.013).cos());
    let mut probe = zoo::lenet(&ZooConfig::tiny(4));
    let labels = (0..images.dims()[0])
        .map(|i| rustfi::metrics::top1(probe.forward(&images.select_batch(i)).data()))
        .collect();
    (images, labels)
}

fn tiny_net() -> Network {
    zoo::lenet(&ZooConfig::tiny(4))
}

fn tiny_campaign<'a>(images: &'a rustfi_tensor::Tensor, labels: &'a [usize]) -> Campaign<'a> {
    Campaign::new(
        &tiny_net,
        images,
        labels,
        FaultMode::Neuron(NeuronSelect::Random),
        Arc::new(models::BitFlipFp32::new(models::BitSelect::Random)),
    )
}

/// Fuzz the torn-tail repair: truncating a valid journal at *every* byte
/// offset inside the last record must still resume to a bit-identical
/// report — no trial duplicated, none dropped, no offset that wedges it.
#[test]
fn resume_survives_truncation_at_every_byte_of_the_last_record() {
    let (images, labels) = tiny_fixture();
    let campaign = tiny_campaign(&images, &labels);
    let cfg = CampaignConfig {
        trials: 10,
        seed: 77,
        ..CampaignConfig::default()
    };
    let reference = campaign.run(&cfg).unwrap();

    let journal = std::env::temp_dir().join(format!("rustfi-fuzz-{}.jsonl", std::process::id()));
    std::fs::remove_file(&journal).ok();
    campaign.run_journaled(&cfg, &journal).unwrap();
    let full = std::fs::read(&journal).unwrap();
    // Byte offset where the last record line starts (the journal ends with
    // a newline, so search from the byte before it).
    let last_line_start = full[..full.len() - 1]
        .iter()
        .rposition(|&b| b == b'\n')
        .map(|p| p + 1)
        .expect("journal has a header line");

    for cut in last_line_start..full.len() {
        std::fs::write(&journal, &full[..cut]).unwrap();
        let resumed = campaign
            .resume(&cfg, &journal)
            .unwrap_or_else(|e| panic!("resume failed after truncating to {cut} bytes: {e}"));
        assert_eq!(
            resumed, reference,
            "truncating to {cut} bytes changed the resumed report"
        );
        assert_eq!(resumed.counts.total(), cfg.trials, "cut at {cut}");
    }
    std::fs::remove_file(&journal).ok();
}

/// Resume refuses a journal whose campaign configuration fingerprint does
/// not match — silently mixing records from diverging configs would be
/// worse than failing.
#[test]
fn resume_refuses_a_journal_from_a_different_configuration() {
    let (images, labels) = tiny_fixture();
    let campaign = tiny_campaign(&images, &labels);
    let cfg = CampaignConfig {
        trials: 8,
        seed: 5,
        ..CampaignConfig::default()
    };
    let journal = std::env::temp_dir().join(format!("rustfi-refuse-{}.jsonl", std::process::id()));
    std::fs::remove_file(&journal).ok();
    campaign.run_journaled(&cfg, &journal).unwrap();

    // Record-affecting knob changed → typed journal error, not silence.
    let altered = CampaignConfig {
        quant: rustfi::QuantMode::Simulated,
        ..cfg.clone()
    };
    let err = campaign.resume(&altered, &journal).unwrap_err();
    assert!(
        matches!(err, rustfi::FiError::Journal { .. }),
        "expected a journal error, got {err:?}"
    );
    assert!(
        err.to_string().contains("different campaign configuration"),
        "unexpected message: {err}"
    );

    // Execution-strategy knobs (threads, fusion) are record-invariant and
    // deliberately excluded from the fingerprint: resume still works.
    let restrategized = CampaignConfig {
        threads: Some(3),
        fusion: Some(rustfi::FusionConfig::default()),
        ..cfg.clone()
    };
    let resumed = campaign.resume(&restrategized, &journal).unwrap();
    assert_eq!(resumed.counts.total(), cfg.trials);

    std::fs::remove_file(&journal).ok();
}

#[test]
fn weight_faults_persist_across_inferences_and_restore() {
    let data = small_dataset();
    let net = trained_lenet(&data);
    let mut fi = FaultInjector::new(net, FiConfig::for_input(&[1, 3, 16, 16])).unwrap();
    let x = data.test_images.select_batch(0);
    let clean = fi.forward(&x);
    fi.declare_weight_fi(&[WeightFault {
        select: WeightSelect::RandomInLayer { layer: 0 },
        model: Arc::new(models::Gain::new(-50.0)),
    }])
    .unwrap();
    let f1 = fi.forward(&x);
    let f2 = fi.forward(&x);
    assert_eq!(f1, f2, "offline weight faults are stable across inferences");
    assert_ne!(clean, f1);
    fi.restore();
    assert_eq!(fi.forward(&x), clean);
}

#[test]
fn int8_quantization_barely_moves_accuracy() {
    // The quantized-network emulation itself must not break the model —
    // otherwise Fig. 4's "quantized networks" premise is violated.
    let data = small_dataset();
    let net = trained_lenet(&data);
    let mut fi = FaultInjector::new(net, FiConfig::for_input(&[1, 3, 16, 16])).unwrap();
    let count_correct = |fi: &mut FaultInjector| {
        let mut correct = 0;
        for i in 0..data.test_len() {
            let out = fi.forward(&data.test_images.select_batch(i));
            if rustfi::metrics::top1(out.data()) == data.test_labels[i] {
                correct += 1;
            }
        }
        correct
    };
    let fp32 = count_correct(&mut fi);
    fi.enable_int8_activations();
    let int8 = count_correct(&mut fi);
    assert!(
        (fp32 as i64 - int8 as i64).abs() <= 2,
        "INT8 emulation changed accuracy too much: {fp32} vs {int8}"
    );
}

#[test]
fn every_zoo_model_survives_wrapping_and_random_injection() {
    let cfg = ZooConfig::tiny(6);
    for name in zoo::model_names() {
        let net = zoo::by_name(name, &cfg).unwrap();
        let mut fi = FaultInjector::new(net, FiConfig::for_input(&[1, 3, 16, 16]))
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        fi.declare_neuron_fi(&[NeuronFault {
            select: NeuronSelect::Random,
            batch: BatchSelect::All,
            model: Arc::new(models::RandomUniform::default()),
        }])
        .unwrap_or_else(|e| panic!("{name}: {e}"));
        let out = fi.forward(&rustfi_tensor::Tensor::ones(&[1, 3, 16, 16]));
        assert_eq!(out.dims(), &[1, 6], "{name}");
        assert_eq!(fi.injections_applied(), 1, "{name}");
    }
}
