//! Feature-map-granularity vulnerability analysis for low-cost selective
//! protection — the follow-on study the paper's §IV-A proposes: inject at
//! feature-map granularity, rank the maps, and find the smallest set whose
//! protection (e.g. by duplication) would cover most observed corruptions.
//!
//! Run with: `cargo run --example selective_protection --release`

use rustfi::granularity::{feature_map_vulnerability, selective_protection};
use rustfi::{models, CampaignConfig};
use rustfi_data::SynthSpec;
use rustfi_nn::train::{fit, TrainConfig};
use rustfi_nn::{checkpoint, zoo, LayerKind, ZooConfig};
use std::sync::Arc;

fn main() {
    let mut spec = SynthSpec::cifar10_like();
    spec.noise = 1.3; // thin margins so corruption is observable
    let data = spec.generate();
    let mut net = zoo::alexnet(&ZooConfig::cifar10_like());
    println!("training alexnet...");
    fit(
        &mut net,
        &data.train_images,
        &data.train_labels,
        &TrainConfig {
            lr: 0.005,
            epochs: 20,
            ..TrainConfig::default()
        },
    );

    // Geometry of the layer under study (the third conv, the widest).
    let conv_infos: Vec<_> = net
        .layer_infos()
        .iter()
        .filter(|l| l.kind == LayerKind::Conv2d)
        .cloned()
        .collect();
    let layer = 2;
    let channels = conv_infos[layer]
        .weight_dims
        .as_ref()
        .expect("conv has weights")[0];
    println!(
        "profiling layer {layer} ({}, {channels} feature maps) with stuck-at-30 injections",
        conv_infos[layer].name
    );

    let ckpt = std::env::temp_dir().join("rustfi-example-selective.ckpt");
    checkpoint::save(&mut net, &ckpt).expect("write checkpoint");
    let path = ckpt.clone();
    let factory = move || {
        let mut net = zoo::alexnet(&ZooConfig::cifar10_like());
        checkpoint::load(&mut net, &path).expect("read checkpoint");
        net
    };

    let profile = feature_map_vulnerability(
        &factory,
        &data.test_images,
        &data.test_labels,
        layer,
        channels,
        Arc::new(models::StuckAt::new(30.0)),
        400,
        &CampaignConfig::default(),
    );

    println!("\nper-feature-map vulnerability:");
    for (channel, &(trials, sdcs)) in profile.per_map.iter().enumerate() {
        let rate = 100.0 * sdcs as f64 / trials.max(1) as f64;
        println!(
            "  map {channel:>2}: {sdcs:>4} SDC / {trials} trials ({rate:>5.2}%) {}",
            "#".repeat((rate / 2.0) as usize)
        );
    }

    for coverage in [0.5, 0.8, 0.95] {
        let protect = selective_protection(&profile, coverage);
        println!(
            "\nprotecting {:>2}/{channels} maps ({:?}) covers {:.0}% of observed SDCs",
            protect.len(),
            protect,
            100.0 * coverage
        );
    }
    std::fs::remove_file(&ckpt).ok();
}
