//! Training inherently error-resilient models (paper §IV-D / Table I, in
//! miniature): train the same ResNet-18 twice from identical initial
//! weights — once clean, once with a random neuron per layer perturbed to a
//! uniform value in [-1, 1] on every training forward pass — then compare
//! training time, accuracy, and post-training SDC counts.
//!
//! Run with: `cargo run --example resilient_training --release`

use rustfi::{models, Campaign, CampaignConfig, FaultMode, NeuronSelect};
use rustfi_data::SynthSpec;
use rustfi_nn::train::{accuracy, fit, TrainConfig};
use rustfi_nn::{checkpoint, zoo, ZooConfig};
use rustfi_robust::TrainingInjector;
use std::sync::Arc;

fn main() {
    let data = SynthSpec::cifar10_like().generate();
    let cfg = TrainConfig::default();
    let zoo_cfg = ZooConfig::cifar10_like();

    // Baseline: clean training.
    let mut baseline = zoo::resnet18(&zoo_cfg);
    let base_report = fit(&mut baseline, &data.train_images, &data.train_labels, &cfg);
    let base_acc = accuracy(&mut baseline, &data.test_images, &data.test_labels, 32);

    // Same initialization seed, but with injection hooks during training.
    let mut fi_net = zoo::resnet18(&zoo_cfg);
    let injector = TrainingInjector::install_hidden(&fi_net, -1.0, 1.0, 7);
    let fi_report = fit(&mut fi_net, &data.train_images, &data.train_labels, &cfg);
    let injections = injector.injections();
    injector.remove();
    let fi_acc = accuracy(&mut fi_net, &data.test_images, &data.test_labels, 32);

    println!("                     baseline      FI-trained");
    println!(
        "training time        {:>10.2?}   {:>10.2?}",
        base_report.wall_time, fi_report.wall_time
    );
    println!(
        "test accuracy        {:>9.2}%   {:>9.2}%",
        100.0 * base_acc,
        100.0 * fi_acc
    );
    println!("injections during training: {injections}");

    // Post-training resiliency comparison (random INT8 bit flips).
    let trials = 3000;
    let run_campaign = |net: &mut rustfi_nn::Network, tag: &str| {
        let ckpt = std::env::temp_dir().join(format!("rustfi-example-table1-{tag}.ckpt"));
        checkpoint::save(net, &ckpt).expect("write checkpoint");
        let path = ckpt.clone();
        let factory = move || {
            let mut net = zoo::resnet18(&ZooConfig::cifar10_like());
            checkpoint::load(&mut net, &path).expect("read checkpoint");
            net
        };
        let campaign = Campaign::new(
            &factory,
            &data.test_images,
            &data.test_labels,
            FaultMode::Neuron(NeuronSelect::Random),
            Arc::new(models::BitFlipInt8::new(models::BitSelect::Random)),
        );
        let result = campaign
            .run(&CampaignConfig {
                trials,
                seed: 11,
                quant: rustfi::QuantMode::Simulated,
                ..CampaignConfig::default()
            })
            .expect("campaign config is valid");
        std::fs::remove_file(&ckpt).ok();
        result
    };
    let base_result = run_campaign(&mut baseline, "base");
    let fi_result = run_campaign(&mut fi_net, "fi");
    println!(
        "post-training SDCs   {:>10}   {:>10}   (out of {trials} injections each)",
        base_result.counts.sdc, fi_result.counts.sdc
    );
    if fi_result.counts.sdc < base_result.counts.sdc {
        println!("=> FI-trained model is more resilient, as in Table I");
    }
}
