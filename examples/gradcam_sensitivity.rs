//! Interpretability via fault injection (paper §IV-E / Fig. 7, in
//! miniature): compute a Grad-CAM heatmap for a trained VGG, rank the
//! feature maps of a mid-network convolution by gradient sensitivity, then
//! inject an egregiously large value into the least and most sensitive
//! maps. The heatmap and Top-1 prediction survive the former; the latter
//! skews the heatmap substantially.
//!
//! Run with: `cargo run --example gradcam_sensitivity --release`

use rustfi::{models, BatchSelect, FaultInjector, FiConfig, NeuronFault, NeuronSelect};
use rustfi_data::SynthSpec;
use rustfi_interpret::sensitivity::aggregate_channel_weights;
use rustfi_interpret::{gradcam, heatmap_divergence, rank_feature_maps, render_heatmap};
use rustfi_nn::train::{fit, predict, TrainConfig};
use rustfi_nn::{zoo, LayerKind, ZooConfig};
use std::sync::Arc;

fn main() -> Result<(), rustfi::FiError> {
    let data = SynthSpec::cifar10_like().generate();
    let mut net = zoo::vgg19(&ZooConfig::cifar10_like().with_width(2.0));
    println!("training vgg19...");
    fit(
        &mut net,
        &data.train_images,
        &data.train_labels,
        &TrainConfig {
            lr: 0.005,
            epochs: 20,
            ..TrainConfig::default()
        },
    );

    // Pick the most confidently, correctly classified test image: on a
    // thin-margin image even an injection into an unimportant feature map
    // trivially flips the Top-1, which would say nothing about sensitivity.
    let preds = predict(&mut net, &data.test_images, 32);
    let mut best: Option<(usize, f32)> = None;
    for (i, pred) in preds.iter().enumerate() {
        if *pred != data.test_labels[i] {
            continue;
        }
        let logits = net.forward(&data.test_images.select_batch(i));
        let conf = rustfi::metrics::confidence(logits.data(), data.test_labels[i]);
        if best.is_none_or(|(_, c)| conf > c) {
            best = Some((i, conf));
        }
    }
    let (idx, conf) = best.expect("some image classifies correctly");
    println!("using test image {idx} (confidence {conf:.3})");
    let image = data.test_images.select_batch(idx);
    let label = data.test_labels[idx];

    // Grad-CAM at a mid-network convolution (the fifth conv): deep enough
    // for semantic feature maps, far enough from the classifier that
    // unimportant channels genuinely attenuate downstream.
    let conv = net
        .layer_infos()
        .iter()
        .filter(|l| l.kind == LayerKind::Conv2d)
        .map(|l| l.id)
        .nth(4)
        .expect("vgg19 has at least five conv layers");
    let clean = gradcam(&mut net, &image, label, conv);
    println!("clean Top-1 = {} (true class {label})", clean.top1);
    println!("clean heatmap:\n{}", render_heatmap(&clean.heatmap));

    // Rank feature maps by gradient sensitivity aggregated over all classes
    // (a map with a tiny true-class gradient can still drive other classes).
    let agg = aggregate_channel_weights(&mut net, &image, conv, data.num_classes);
    let ranking = rank_feature_maps(&agg);
    let most = ranking.first().expect("channels").0;
    let least = ranking.last().expect("channels").0;
    println!("most sensitive feature map: {most}; least sensitive: {least}");

    let mut fi = FaultInjector::new(net, FiConfig::for_input(&[1, 3, 16, 16]))?;
    let layer_index = fi
        .profile()
        .layers()
        .iter()
        .position(|l| l.id == conv)
        .expect("profiled");

    // "Egregiously large" relative to this substrate: activations are O(1),
    // so 200 is ~100x the typical magnitude (the paper's 10,000 plays the
    // same role against ImageNet-scale activations).
    let egregious = 200.0;
    for (name, channel) in [("least", least), ("most", most)] {
        fi.restore();
        fi.declare_neuron_fi(&[NeuronFault {
            select: NeuronSelect::RandomInChannel {
                layer: layer_index,
                channel,
            },
            batch: BatchSelect::All,
            model: Arc::new(models::StuckAt::new(egregious)),
        }])?;
        // Grad-CAM on the *perturbed* network: hooks compose — the injection
        // hook fires, then the capture hook sees the corrupted activations.
        let cam = gradcam(fi.net_mut(), &image, label, conv);
        let div = heatmap_divergence(&clean.heatmap, &cam.heatmap);
        println!(
            "\ninject {egregious} into {name}-sensitive map {channel}: Top-1 = {} ({}), heatmap divergence {div:.3}",
            cam.top1,
            if cam.top1 == clean.top1 { "unchanged" } else { "FLIPPED" },
        );
        println!("{}", render_heatmap(&cam.heatmap));
    }
    Ok(())
}
