//! Object-detection perturbation (paper §IV-B / Fig. 5, in miniature):
//! train the YOLO-lite detector on synthetic scenes, then inject one random
//! neuron per layer with a random FP32 bit pattern and compare detections —
//! phantom objects appear, exactly as in the paper's qualitative figure.
//!
//! Run with: `cargo run --example detection_perturbation --release`

use rustfi::{models, BatchSelect, FaultInjector, FiConfig, NeuronFault, NeuronSelect};
use rustfi_data::DetectionSpec;
use rustfi_detect::{diff_detections, DetectorConfig, TrainDetectorConfig, YoloLite};
use rustfi_interpret::render::render_channel;
use std::sync::Arc;

fn main() -> Result<(), rustfi::FiError> {
    let scenes = DetectionSpec::coco_like().generate(32);
    let det_cfg = DetectorConfig::default();
    let mut detector = YoloLite::new(&det_cfg);
    println!("training YOLO-lite on {} scenes...", scenes.len());
    let losses = detector.train(&scenes, &TrainDetectorConfig::default());
    println!(
        "loss: {:.3} -> {:.3}",
        losses[0],
        losses.last().copied().unwrap_or(f32::NAN)
    );

    // Wrap the detector's network in the injector.
    let fi = FaultInjector::new(
        detector.into_net(),
        FiConfig::for_input(&[1, 3, det_cfg.image_hw, det_cfg.image_hw]),
    )?;

    // One random neuron per layer, each set to a uniformly random FP32 bit
    // pattern (the paper's §IV-B error model).
    let per_layer_faults: Vec<NeuronFault> = (0..fi.profile().len())
        .map(|layer| NeuronFault {
            select: NeuronSelect::RandomInLayer { layer },
            batch: BatchSelect::All,
            model: Arc::new(models::RandomFp32Bits),
        })
        .collect();

    let scene = &scenes[0];
    println!(
        "\nscene (red channel):\n{}",
        render_channel(&scene.image, 0, 0)
    );
    println!("ground truth: {:?}\n", scene.objects);

    // Clean run.
    let mut detector = YoloLite::from_net(fi.into_inner(), &det_cfg);
    let clean = detector.detect(&scene.image, 0.4);
    let clean_diff = diff_detections(&clean, &scene.objects, 0.3);
    println!("clean:     {} detections, {clean_diff:?}", clean.len());

    // Faulty runs (several trials to show the spread).
    let mut fi = FaultInjector::new(
        detector.into_net(),
        FiConfig::for_input(&[1, 3, det_cfg.image_hw, det_cfg.image_hw]),
    )?;
    for trial in 0..5 {
        fi.restore();
        fi.reseed(100 + trial);
        fi.declare_neuron_fi(&per_layer_faults)?;
        let raw = fi.forward(&scene.image);
        let cands = rustfi_detect::decode_grid(&raw, 0, det_cfg.num_classes);
        let dets = rustfi_detect::nms(cands.into_iter().filter(|d| d.score >= 0.4).collect(), 0.4);
        let diff = diff_detections(&dets, &scene.objects, 0.3);
        println!(
            "faulty #{trial}: {} detections, {diff:?}{}",
            dets.len(),
            if diff.phantom > 0 {
                "  <- phantom objects!"
            } else {
                ""
            }
        );
    }
    Ok(())
}
