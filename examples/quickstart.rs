//! Quickstart: the paper's "three lines of code" workflow.
//!
//! 1. Build (or load) a model.
//! 2. Wrap it in a `FaultInjector` — this runs the dummy profiling pass.
//! 3. Declare a perturbation and run inference.
//!
//! Run with: `cargo run --example quickstart --release`

use rustfi::{models, BatchSelect, FaultInjector, FiConfig, NeuronFault, NeuronSelect};
use rustfi_nn::{zoo, ZooConfig};
use rustfi_tensor::{SeededRng, Tensor};
use std::sync::Arc;

fn main() -> Result<(), rustfi::FiError> {
    // Step 1: a model (LeNet on 3x16x16 inputs, 10 classes).
    let net = zoo::lenet(&ZooConfig::tiny(10));

    // Step 2: wrap it. The injector profiles the model with one dummy
    // inference and learns every injectable layer's geometry.
    let mut fi = FaultInjector::new(net, FiConfig::for_input(&[1, 3, 16, 16]))?;
    println!("{}", fi.profile());

    // A test input.
    let mut rng = SeededRng::new(7);
    let image = Tensor::rand_normal(&[1, 3, 16, 16], 0.0, 1.0, &mut rng);
    let clean = fi.forward(&image);
    println!("clean logits:     {:?}", &clean.data()[..5]);

    // Step 3: declare a perturbation — the paper's default error model is a
    // uniform random value in [-1, 1] at a random neuron.
    let sites = fi.declare_neuron_fi(&[NeuronFault {
        select: NeuronSelect::Random,
        batch: BatchSelect::All,
        model: Arc::new(models::RandomUniform::default()),
    }])?;
    println!("injected at: {:?}", sites[0]);
    let faulty = fi.forward(&image);
    println!("perturbed logits: {:?}", &faulty.data()[..5]);

    // Clean up and verify the model is pristine again.
    fi.restore();
    assert_eq!(fi.forward(&image), clean);
    println!("restored: outputs match the clean run again");
    Ok(())
}
