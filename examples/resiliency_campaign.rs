//! Resiliency analysis of a classification network (paper §IV-A, in
//! miniature): train a CNN on the synthetic CIFAR-10-like dataset, then run
//! a single-bit-flip injection campaign on INT8-quantized neurons and report
//! SDC rates, per-layer vulnerability, and confidence impact.
//!
//! Run with: `cargo run --example resiliency_campaign --release`

use rustfi::{models, Campaign, CampaignConfig, FaultMode, GuardMode, NeuronSelect};
use rustfi_data::SynthSpec;
use rustfi_nn::train::{accuracy, fit, TrainConfig};
use rustfi_nn::{checkpoint, zoo, ZooConfig};
use std::sync::Arc;

fn main() {
    // Train AlexNet on the ImageNet-like synthetic dataset (the paper's
    // §IV-A setting, scaled down).
    let data = SynthSpec::imagenet_like().generate();
    let mut net = zoo::alexnet(&ZooConfig::imagenet_like());
    println!(
        "training alexnet on {} ({} images)...",
        data.name,
        data.train_len()
    );
    let report = fit(
        &mut net,
        &data.train_images,
        &data.train_labels,
        &TrainConfig::default(),
    );
    let acc = accuracy(&mut net, &data.test_images, &data.test_labels, 32);
    println!(
        "trained in {:.1?} ({} steps), test accuracy {:.1}%",
        report.wall_time,
        report.steps,
        100.0 * acc
    );

    // Campaign workers rebuild the model from a checkpoint.
    let ckpt = std::env::temp_dir().join("rustfi-example-campaign.ckpt");
    checkpoint::save(&mut net, &ckpt).expect("write checkpoint");
    let ckpt_path = ckpt.clone();
    let factory = move || {
        let mut net = zoo::alexnet(&ZooConfig::imagenet_like());
        checkpoint::load(&mut net, &ckpt_path).expect("read checkpoint");
        net
    };

    // Single INT8 bit flip in a random neuron, random bit — paper Fig. 4's
    // error model.
    let campaign = Campaign::new(
        &factory,
        &data.test_images,
        &data.test_labels,
        FaultMode::Neuron(NeuronSelect::Random),
        Arc::new(models::BitFlipInt8::new(models::BitSelect::Random)),
    );
    let trials = 4000;
    println!("running {trials} INT8 bit-flip injections (journaled, guarded)...");
    // A journaled run survives being killed: rerunning this example resumes
    // from the journal and replays finished trials bit-identically. The
    // guard hooks attribute any NaN/Inf DUE to the layer that produced it.
    let journal = std::env::temp_dir().join("rustfi-example-campaign.jsonl");
    let result = campaign
        .run_journaled(
            &CampaignConfig {
                trials,
                seed: 1,
                quant: rustfi::QuantMode::Simulated,
                guard: GuardMode::Record,
                ..CampaignConfig::default()
            },
            &journal,
        )
        .expect("campaign runs to completion");

    println!(
        "eligible images: {} | outcomes: {} masked, {} SDC, {} DUE, {} crash, {} hang",
        result.eligible_images,
        result.counts.masked,
        result.counts.sdc,
        result.counts.due,
        result.counts.crash,
        result.counts.hang
    );
    println!(
        "SDC rate: {:.3}% (99% CI ±{:.3}%), mean confidence delta {:+.4}",
        100.0 * result.sdc_rate(),
        100.0 * result.counts.sdc_rate_ci99(),
        result.mean_confidence_delta()
    );
    println!("\nper-layer vulnerability (trials / SDCs / rate):");
    for (layer, &(t, s)) in result.per_layer.iter().enumerate() {
        if t == 0 {
            continue;
        }
        println!(
            "  layer {layer:>2}: {t:>5} trials, {s:>4} SDCs, {:>6.2}%",
            100.0 * s as f64 / t as f64
        );
    }
    std::fs::remove_file(&ckpt).ok();
    std::fs::remove_file(&journal).ok();
}
