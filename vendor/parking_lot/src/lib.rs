//! Offline shim for the subset of `parking_lot` the RustFI workspace uses.
//!
//! The build environment for this repository is fully hermetic (no crates.io
//! access), so the external `parking_lot` crate is replaced by this thin
//! wrapper over [`std::sync`]. It keeps the two behavioural properties the
//! codebase relies on:
//!
//! - `lock()` / `read()` / `write()` return guards directly (no `Result`);
//! - locks never poison: a panic while holding a guard (which isolated
//!   fault-injection trials do on purpose) leaves the lock usable.

use std::sync::PoisonError;

/// Mutual exclusion lock with `parking_lot`'s non-poisoning, non-`Result` API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Reader-writer lock with `parking_lot`'s non-poisoning, non-`Result` API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard. Never poisons.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard. Never poisons.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn mutex_survives_panicking_holder() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::panic::catch_unwind(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        });
        // parking_lot semantics: still lockable afterwards.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
