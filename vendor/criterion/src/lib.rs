//! Offline mini-criterion.
//!
//! The RustFI build environment is hermetic (no crates.io), so this crate
//! implements the small slice of the `criterion` API the workspace's benches
//! use: `benchmark_group` / `bench_function` / `bench_with_input` /
//! `BenchmarkId` / `black_box` and the `criterion_group!` / `criterion_main!`
//! macros.
//!
//! Statistics are deliberately simple — a short warm-up followed by timed
//! batches, reporting mean wall-clock time per iteration — which is enough
//! for the relative comparisons (figure reproductions, ablations) these
//! benches exist to make.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benched work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark identifier combining a function name and a parameter.
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// `name/parameter`, matching criterion's display convention.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            full: format!("{}/{}", name.into(), parameter),
        }
    }

    /// A bare parameter id (criterion's `from_parameter`).
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            full: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.full)
    }
}

/// Timing driver handed to each benchmark closure.
pub struct Bencher {
    sample_size: usize,
}

impl Bencher {
    /// Runs `routine` repeatedly and records the mean time per call.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        // Warm-up: run a few times so first-touch costs (allocation, page
        // faults, lazy init) don't pollute the measurement.
        let warmups = 2.min(self.sample_size);
        for _ in 0..warmups {
            black_box(routine());
        }
        let start = Instant::now();
        for _ in 0..self.sample_size {
            black_box(routine());
        }
        let total = start.elapsed();
        self.report(total);
    }

    fn report(&self, total: Duration) {
        let mean = total.as_secs_f64() / self.sample_size as f64;
        println!(
            "    time: {} (mean of {} iterations)",
            format_seconds(mean),
            self.sample_size
        );
    }
}

fn format_seconds(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} µs", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed iterations each benchmark runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Benchmarks `routine` under `id`.
    pub fn bench_function(&mut self, id: impl Display, routine: impl FnMut(&mut Bencher)) {
        self.run(id, routine);
    }

    /// Benchmarks `routine` with a borrowed input under `id`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Display,
        input: &I,
        mut routine: impl FnMut(&mut Bencher, &I),
    ) {
        self.run(id, |b| routine(b, input));
    }

    /// Ends the group (present for API parity; reporting is immediate).
    pub fn finish(self) {}

    fn run(&mut self, id: impl Display, mut routine: impl FnMut(&mut Bencher)) {
        println!("{}/{}", self.name, id);
        let mut bencher = Bencher {
            sample_size: self.sample_size,
        };
        routine(&mut bencher);
    }
}

/// Benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _criterion: self,
        }
    }

    /// Benchmarks `routine` outside any group.
    pub fn bench_function(&mut self, id: impl Display, routine: impl FnMut(&mut Bencher)) {
        let mut group = self.benchmark_group("bench");
        group.bench_function(id, routine);
        group.finish();
    }
}

/// Bundles benchmark functions under one name, as upstream criterion does.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the given groups (CLI arguments are ignored).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_benchmarks() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("demo");
        group.sample_size(3);
        let mut runs = 0usize;
        group.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        group.finish();
        // 2 warm-ups + 3 timed iterations.
        assert_eq!(runs, 5);
    }

    #[test]
    fn bench_with_input_passes_input() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("demo");
        group.sample_size(1);
        group.bench_with_input(BenchmarkId::new("sq", 7), &7u32, |b, &x| {
            b.iter(|| black_box(x * x))
        });
        group.finish();
    }

    #[test]
    fn benchmark_id_formats_like_criterion() {
        assert_eq!(BenchmarkId::new("conv", 32).to_string(), "conv/32");
        assert_eq!(BenchmarkId::from_parameter(5).to_string(), "5");
    }
}
