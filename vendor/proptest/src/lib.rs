//! Offline mini-proptest.
//!
//! The RustFI build environment is hermetic (no crates.io), so this crate
//! provides the small slice of the `proptest` API the workspace's property
//! tests actually use: the `proptest!` macro, range/`any`/collection
//! strategies, `prop_assert!`/`prop_assert_eq!`, and `ProptestConfig`.
//!
//! Semantics are simplified but honest: every test function runs its body
//! for `cases` deterministically-seeded random inputs. There is no input
//! shrinking — a failing case reports the assertion message directly, and
//! seeds derive from the test name, so failures reproduce exactly.

use std::marker::PhantomData;
use std::ops::Range;

/// Per-block configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases each test function runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Deterministic test-case RNG (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates an RNG whose stream depends only on `name`, so each property
    /// test sees the same inputs on every run.
    pub fn deterministic(name: &str) -> Self {
        let mut state = 0x5EED_0F5E_ED0F_u64;
        for b in name.bytes() {
            state = state.wrapping_mul(0x100000001B3).wrapping_add(b as u64);
        }
        Self { state }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut x = self.state;
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^ (x >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0);
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

/// A generator of test inputs.
pub trait Strategy {
    /// The value type produced.
    type Value;
    /// Samples one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let v = self.start as f64
                    + (self.end as f64 - self.start as f64) * rng.unit_f64();
                let v = v as $t;
                if v >= self.end { self.start } else { v.max(self.start) }
            }
        }
    )*};
}
float_range_strategy!(f32, f64);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Samples an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy produced by [`any`].
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The "any value of `T`" strategy.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

/// Numeric bit-pattern strategies (`prop::num`).
pub mod num {
    /// `f32` strategies.
    pub mod f32 {
        use crate::{Strategy, TestRng};

        /// Any `f32` bit pattern, including NaN and infinities.
        pub struct AnyF32;
        /// Any *normal* (finite, non-subnormal, nonzero) `f32`.
        pub struct NormalF32;

        /// Any `f32` bit pattern.
        pub const ANY: AnyF32 = AnyF32;
        /// Any normal `f32`.
        pub const NORMAL: NormalF32 = NormalF32;

        impl Strategy for AnyF32 {
            type Value = f32;
            fn generate(&self, rng: &mut TestRng) -> f32 {
                f32::from_bits(rng.next_u64() as u32)
            }
        }

        impl Strategy for NormalF32 {
            type Value = f32;
            fn generate(&self, rng: &mut TestRng) -> f32 {
                // sign ±, exponent in [1, 254], random mantissa: always normal.
                let sign = (rng.next_u64() & 1) as u32;
                let exp = 1 + rng.below(254) as u32;
                let mantissa = rng.next_u64() as u32 & 0x007F_FFFF;
                f32::from_bits((sign << 31) | (exp << 23) | mantissa)
            }
        }
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use crate::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec`s with sizes drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A `Vec` of values from `element`, with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.start + rng.below((self.size.end - self.size.start) as u64) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Declares property tests: each `fn name(x in strategy, ...) { body }` item
/// becomes a `#[test]` running `body` over `cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!{ ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!{ ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr);) => {};
    (($cfg:expr);
     $(#[$attr:meta])*
     fn $name:ident($($p:ident in $s:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$attr])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__cfg.cases {
                $(let $p = $crate::Strategy::generate(&($s), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_items!{ ($cfg); $($rest)* }
    };
}

/// The glob-import surface (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::TestRng;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..9, y in -2.0f32..2.0) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn vec_sizes_respect_range(v in prop::collection::vec(0u32..5, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&e| e < 5));
        }

        #[test]
        fn normal_floats_are_normal(x in prop::num::f32::NORMAL) {
            prop_assert!(x.is_normal());
        }

        #[test]
        fn any_is_deterministic_per_test(a in any::<u64>(), b in any::<i8>()) {
            // Just exercise the strategies; determinism is implied by the
            // name-derived seed.
            let _ = (a, b);
        }
    }

    #[test]
    fn rng_is_deterministic_for_same_name() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
