//! # RustFI reproduction package
//!
//! This crate is the umbrella package for the RustFI workspace, a from-scratch
//! Rust reproduction of *PyTorchFI: A Runtime Perturbation Tool for DNNs*
//! (DSN 2020). It re-exports the workspace crates so the runnable examples in
//! `examples/` and the integration tests in `tests/` can use one import root.
//!
//! The interesting code lives in the member crates:
//!
//! - [`rustfi`] — the fault injector itself (the paper's contribution)
//! - [`rustfi_nn`] — the hook-capable DNN framework substrate
//! - [`rustfi_tensor`] — the tensor library underneath it
//! - [`rustfi_data`] — deterministic synthetic datasets
//! - [`rustfi_quant`] — INT8/FP32 quantization and bit-flip machinery
//! - [`rustfi_detect`] — a YOLO-style object detector
//! - [`rustfi_robust`] — IBP robust training and FI-in-training
//! - [`rustfi_interpret`] — Grad-CAM interpretability
//!
//! See `README.md` for a quickstart and `DESIGN.md` for the architecture.

pub use rustfi;
pub use rustfi_data;
pub use rustfi_detect;
pub use rustfi_interpret;
pub use rustfi_nn;
pub use rustfi_quant;
pub use rustfi_robust;
pub use rustfi_tensor;
